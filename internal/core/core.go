// Package core implements the paper's primary contribution: the multi-user
// route navigation game of §3. It defines game instances (users, recommended
// routes, covered tasks), strategy profiles with incrementally-maintained
// participant counts, the profit function P_i (Eq. 2), the weighted
// potential function Φ (Eq. 8), and best/better response computation — the
// machinery Theorems 1–5 and Algorithms 1–3 are built on.
package core

import (
	"fmt"
	"math"

	"repro/internal/task"
)

// UserID identifies a user (vehicle driver) in an instance.
type UserID int

// Route is one recommended route for a specific user. Detour is h(r), the
// extra distance versus the user's shortest route (meters); Congestion is
// c(r), the congestion level of the route.
type Route struct {
	User       UserID
	Tasks      []task.ID // L_r: tasks covered by this route
	Detour     float64   // h(r) >= 0
	Congestion float64   // c(r) >= 0
}

// User holds one user's preference weights α_i, β_i, γ_i (Eq. 2) and its
// recommended route set R_i.
type User struct {
	ID                 UserID
	Alpha, Beta, Gamma float64
	Routes             []Route // R_i; every Route.User must equal ID
}

// Instance is a complete game: the users with their recommended routes, the
// task set, and the platform weights φ and θ.
type Instance struct {
	Users []User
	Tasks []task.Task
	// Phi and Theta are the platform-controlled weights of Eqs. (3)–(4).
	Phi, Theta float64
	// EMin and EMax bound the user weights (e_min < α,β,γ < e_max in §3.1);
	// they appear in the Theorem-4 convergence bound. Zero values mean
	// "derive from the instance".
	EMin, EMax float64
}

// NumUsers returns |U|.
func (in *Instance) NumUsers() int { return len(in.Users) }

// NumTasks returns |L|.
func (in *Instance) NumTasks() int { return len(in.Tasks) }

// WeightBounds returns (e_min, e_max): the configured bounds if set,
// otherwise the min/max over all user weights in the instance.
func (in *Instance) WeightBounds() (float64, float64) {
	if in.EMin > 0 && in.EMax > 0 {
		return in.EMin, in.EMax
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, u := range in.Users {
		for _, w := range [3]float64{u.Alpha, u.Beta, u.Gamma} {
			if w < lo {
				lo = w
			}
			if w > hi {
				hi = w
			}
		}
	}
	if math.IsInf(lo, 1) {
		return 0, 0
	}
	return lo, hi
}

// DetourCost returns d(r) = φ·h(r) (Eq. 3).
func (in *Instance) DetourCost(r Route) float64 { return in.Phi * r.Detour }

// CongestionCost returns b(r) = θ·c(r) (Eq. 4).
func (in *Instance) CongestionCost(r Route) float64 { return in.Theta * r.Congestion }

// Validate checks the structural invariants §3.1 assumes: positive user
// weights, at least one route per user, routes owned by their user, task IDs
// in range, valid task parameters, and φ, θ in (0,1).
func (in *Instance) Validate() error {
	if len(in.Users) == 0 {
		return fmt.Errorf("core: instance has no users")
	}
	if in.Phi <= 0 || in.Phi >= 1 {
		return fmt.Errorf("core: φ=%v outside (0,1)", in.Phi)
	}
	if in.Theta <= 0 || in.Theta >= 1 {
		return fmt.Errorf("core: θ=%v outside (0,1)", in.Theta)
	}
	for k, tk := range in.Tasks {
		if task.ID(k) != tk.ID {
			return fmt.Errorf("core: task %d stored at index %d", tk.ID, k)
		}
		if err := tk.Validate(); err != nil {
			return fmt.Errorf("core: %w", err)
		}
	}
	for i, u := range in.Users {
		if UserID(i) != u.ID {
			return fmt.Errorf("core: user %d stored at index %d", u.ID, i)
		}
		if u.Alpha <= 0 || u.Beta <= 0 || u.Gamma <= 0 {
			return fmt.Errorf("core: user %d has nonpositive weights α=%v β=%v γ=%v", u.ID, u.Alpha, u.Beta, u.Gamma)
		}
		if len(u.Routes) == 0 {
			return fmt.Errorf("core: user %d has an empty recommended route set", u.ID)
		}
		for ri, r := range u.Routes {
			if r.User != u.ID {
				return fmt.Errorf("core: user %d route %d owned by %d", u.ID, ri, r.User)
			}
			if r.Detour < 0 || r.Congestion < 0 {
				return fmt.Errorf("core: user %d route %d has negative detour/congestion", u.ID, ri)
			}
			seen := map[task.ID]bool{}
			for _, k := range r.Tasks {
				if int(k) < 0 || int(k) >= len(in.Tasks) {
					return fmt.Errorf("core: user %d route %d covers unknown task %d", u.ID, ri, k)
				}
				if seen[k] {
					return fmt.Errorf("core: user %d route %d covers task %d twice", u.ID, ri, k)
				}
				seen[k] = true
			}
		}
	}
	return nil
}

// Eps is the strict-improvement tolerance: a response must improve profit by
// more than Eps to count as a better response. A positive tolerance makes
// the finite-improvement property robust to floating-point noise.
const Eps = 1e-9
