package core

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"repro/internal/rng"
)

func TestJSONRoundTrip(t *testing.T) {
	s := rng.New(50)
	for trial := 0; trial < 20; trial++ {
		in := RandomInstance(DefaultRandomConfig(8, 12), s.Child())
		var buf bytes.Buffer
		if err := in.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		got, err := ReadJSON(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if got.Phi != in.Phi || got.Theta != in.Theta || got.EMin != in.EMin || got.EMax != in.EMax {
			t.Fatal("scalar fields differ after round trip")
		}
		if len(got.Tasks) != len(in.Tasks) || len(got.Users) != len(in.Users) {
			t.Fatal("sizes differ after round trip")
		}
		for k := range in.Tasks {
			if got.Tasks[k].A != in.Tasks[k].A || got.Tasks[k].Mu != in.Tasks[k].Mu {
				t.Fatalf("task %d differs", k)
			}
		}
		for i := range in.Users {
			gu, wu := got.Users[i], in.Users[i]
			if gu.Alpha != wu.Alpha || gu.Beta != wu.Beta || gu.Gamma != wu.Gamma {
				t.Fatalf("user %d weights differ", i)
			}
			if len(gu.Routes) != len(wu.Routes) {
				t.Fatalf("user %d route count differs", i)
			}
			for ri := range wu.Routes {
				gr, wr := gu.Routes[ri], wu.Routes[ri]
				if gr.Detour != wr.Detour || gr.Congestion != wr.Congestion || len(gr.Tasks) != len(wr.Tasks) {
					t.Fatalf("user %d route %d differs", i, ri)
				}
				for ti := range wr.Tasks {
					if gr.Tasks[ti] != wr.Tasks[ti] {
						t.Fatalf("user %d route %d task %d differs", i, ri, ti)
					}
				}
			}
		}
		// Semantics preserved: same profits on the same profile.
		p1 := RandomProfile(in, rng.New(trial0(trial)))
		p2, err := NewProfile(got, p1.Choices())
		if err != nil {
			t.Fatal(err)
		}
		for i := range in.Users {
			if math.Abs(p1.Profit(UserID(i))-p2.Profit(UserID(i))) > 1e-12 {
				t.Fatalf("profit differs for user %d after round trip", i)
			}
		}
		if math.Abs(p1.Potential()-p2.Potential()) > 1e-9 {
			t.Fatal("potential differs after round trip")
		}
	}
}

func trial0(trial int) uint64 { return uint64(trial) + 999 }

func TestWriteJSONRejectsInvalid(t *testing.T) {
	var buf bytes.Buffer
	if err := (&Instance{}).WriteJSON(&buf); err == nil {
		t.Error("invalid instance serialized")
	}
}

func TestReadJSONRejectsGarbage(t *testing.T) {
	if _, err := ReadJSON(strings.NewReader("not json")); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := ReadJSON(strings.NewReader(`{"version":99,"users":[]}`)); err == nil {
		t.Error("wrong version accepted")
	}
	// Structurally valid JSON but semantically invalid instance.
	if _, err := ReadJSON(strings.NewReader(`{"version":1,"phi":0.5,"theta":0.5,"tasks":[],"users":[{"alpha":0,"beta":1,"gamma":1,"routes":[{"detour":0,"congestion":0}]}]}`)); err == nil {
		t.Error("invalid loaded instance accepted")
	}
}

func TestReadJSONOutOfRangeTask(t *testing.T) {
	doc := `{"version":1,"phi":0.5,"theta":0.5,
		"tasks":[{"a":10,"mu":0}],
		"users":[{"alpha":0.5,"beta":0.5,"gamma":0.5,
		          "routes":[{"tasks":[5],"detour":0,"congestion":0}]}]}`
	if _, err := ReadJSON(strings.NewReader(doc)); err == nil {
		t.Error("route referencing unknown task accepted")
	}
}
