package core

import (
	"repro/internal/rng"
	"repro/internal/task"
)

// RandomConfig parametrizes abstract (non-geographic) instance generation,
// used by tests, property checks, and micro-benchmarks. Field defaults
// follow Table 2.
type RandomConfig struct {
	Users, Tasks             int
	RoutesMin, RoutesMax     int     // recommended routes per user, 1..5
	TasksPerRouteMax         int     // routes cover 0..this many tasks
	AMin, AMax               float64 // base reward, 10..20
	MuMin, MuMax             float64 // µ, 0..1
	WeightMin, WeightMax     float64 // α,β,γ, 0.1..0.9
	DetourMax, CongestionMax float64 // h(r), c(r) upper bounds
	Phi, Theta               float64 // 0 means: sample from 0.1..0.8
}

// DefaultRandomConfig returns Table-2 defaults for the given sizes.
func DefaultRandomConfig(users, tasks int) RandomConfig {
	return RandomConfig{
		Users: users, Tasks: tasks,
		RoutesMin: 1, RoutesMax: 5,
		TasksPerRouteMax: 4,
		AMin:             10, AMax: 20,
		MuMin: 0, MuMax: 1,
		WeightMin: 0.1, WeightMax: 0.9,
		DetourMax: 15, CongestionMax: 15,
	}
}

// RandomInstance generates a valid random instance from the configuration.
// The same stream state always yields the same instance.
func RandomInstance(cfg RandomConfig, s *rng.Stream) *Instance {
	in := &Instance{
		Phi:   cfg.Phi,
		Theta: cfg.Theta,
		EMin:  cfg.WeightMin,
		EMax:  cfg.WeightMax,
	}
	if in.Phi == 0 {
		in.Phi = s.Uniform(0.1, 0.8)
	}
	if in.Theta == 0 {
		in.Theta = s.Uniform(0.1, 0.8)
	}
	for k := 0; k < cfg.Tasks; k++ {
		in.Tasks = append(in.Tasks, task.Task{
			ID: task.ID(k),
			A:  s.Uniform(cfg.AMin, cfg.AMax),
			Mu: s.Uniform(cfg.MuMin, cfg.MuMax),
		})
	}
	for i := 0; i < cfg.Users; i++ {
		u := User{
			ID:    UserID(i),
			Alpha: s.Uniform(cfg.WeightMin, cfg.WeightMax),
			Beta:  s.Uniform(cfg.WeightMin, cfg.WeightMax),
			Gamma: s.Uniform(cfg.WeightMin, cfg.WeightMax),
		}
		nRoutes := s.IntRange(cfg.RoutesMin, cfg.RoutesMax)
		for r := 0; r < nRoutes; r++ {
			route := Route{User: u.ID}
			if r > 0 { // route 0 is the shortest route: zero detour
				route.Detour = s.Uniform(0, cfg.DetourMax)
			}
			route.Congestion = s.Uniform(0, cfg.CongestionMax)
			if cfg.Tasks > 0 {
				nT := s.IntRange(0, minI(cfg.TasksPerRouteMax, cfg.Tasks))
				perm := s.Perm(cfg.Tasks)
				for _, k := range perm[:nT] {
					route.Tasks = append(route.Tasks, task.ID(k))
				}
			}
			u.Routes = append(u.Routes, route)
		}
		in.Users = append(in.Users, u)
	}
	return in
}

// RandomProfile returns a uniformly random strategy profile over the
// instance — Algorithm 1's initialization (line 3).
func RandomProfile(in *Instance, s *rng.Stream) *Profile {
	choices := make([]int, len(in.Users))
	for i, u := range in.Users {
		choices[i] = s.Intn(len(u.Routes))
	}
	p, err := NewProfile(in, choices)
	if err != nil {
		panic(err) // choices are in range by construction
	}
	return p
}

func minI(a, b int) int {
	if a < b {
		return a
	}
	return b
}
