package core

import (
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/task"
)

// jsonInstance is the serialized form of an Instance. The on-disk schema is
// versioned so saved scenarios stay loadable as the library evolves.
type jsonInstance struct {
	Version int        `json:"version"`
	Phi     float64    `json:"phi"`
	Theta   float64    `json:"theta"`
	EMin    float64    `json:"emin,omitempty"`
	EMax    float64    `json:"emax,omitempty"`
	Tasks   []jsonTask `json:"tasks"`
	Users   []jsonUser `json:"users"`
}

type jsonTask struct {
	A  float64 `json:"a"`
	Mu float64 `json:"mu"`
}

type jsonUser struct {
	Alpha  float64     `json:"alpha"`
	Beta   float64     `json:"beta"`
	Gamma  float64     `json:"gamma"`
	Routes []jsonRoute `json:"routes"`
}

type jsonRoute struct {
	Tasks      []int   `json:"tasks,omitempty"`
	Detour     float64 `json:"detour"`
	Congestion float64 `json:"congestion"`
}

// codecVersion is the current schema version.
const codecVersion = 1

// WriteJSON serializes the instance. Positions and trace geometry are not
// part of the game and are not stored; the instance round-trips exactly.
func (in *Instance) WriteJSON(w io.Writer) error {
	if err := in.Validate(); err != nil {
		return fmt.Errorf("core: refusing to serialize invalid instance: %w", err)
	}
	doc := jsonInstance{
		Version: codecVersion,
		Phi:     in.Phi, Theta: in.Theta,
		EMin: in.EMin, EMax: in.EMax,
	}
	for _, tk := range in.Tasks {
		doc.Tasks = append(doc.Tasks, jsonTask{A: tk.A, Mu: tk.Mu})
	}
	for _, u := range in.Users {
		ju := jsonUser{Alpha: u.Alpha, Beta: u.Beta, Gamma: u.Gamma}
		for _, r := range u.Routes {
			jr := jsonRoute{Detour: r.Detour, Congestion: r.Congestion}
			for _, k := range r.Tasks {
				jr.Tasks = append(jr.Tasks, int(k))
			}
			ju.Routes = append(ju.Routes, jr)
		}
		doc.Users = append(doc.Users, ju)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

// ReadJSON deserializes an instance written by WriteJSON, validating it.
func ReadJSON(r io.Reader) (*Instance, error) {
	var doc jsonInstance
	if err := json.NewDecoder(r).Decode(&doc); err != nil {
		return nil, fmt.Errorf("core: decoding instance: %w", err)
	}
	if doc.Version != codecVersion {
		return nil, fmt.Errorf("core: unsupported instance schema version %d (want %d)", doc.Version, codecVersion)
	}
	in := &Instance{Phi: doc.Phi, Theta: doc.Theta, EMin: doc.EMin, EMax: doc.EMax}
	for k, jt := range doc.Tasks {
		in.Tasks = append(in.Tasks, task.Task{ID: task.ID(k), A: jt.A, Mu: jt.Mu})
	}
	for i, ju := range doc.Users {
		u := User{ID: UserID(i), Alpha: ju.Alpha, Beta: ju.Beta, Gamma: ju.Gamma}
		for _, jr := range ju.Routes {
			r := Route{User: u.ID, Detour: jr.Detour, Congestion: jr.Congestion}
			for _, k := range jr.Tasks {
				r.Tasks = append(r.Tasks, task.ID(k))
			}
			u.Routes = append(u.Routes, r)
		}
		in.Users = append(in.Users, u)
	}
	if err := in.Validate(); err != nil {
		return nil, fmt.Errorf("core: loaded instance invalid: %w", err)
	}
	return in, nil
}
