package core

import (
	"fmt"

	"repro/internal/task"
)

// Profile is a strategy profile s = (s_1, ..., s_M): one chosen route per
// user, together with the incrementally-maintained participant counts
// n_k(s). All profit and potential evaluations run against a Profile.
type Profile struct {
	inst    *Instance
	choices []int // choices[i] indexes Users[i].Routes
	nk      []int // nk[k] = number of users whose chosen route covers task k

	scratch []int32 // per-task scratch marks for delta evaluations
	mark    int32
}

// NewProfile builds a profile from per-user route indices. The slice is
// copied. It returns an error if any index is out of range.
func NewProfile(inst *Instance, choices []int) (*Profile, error) {
	if len(choices) != len(inst.Users) {
		return nil, fmt.Errorf("core: %d choices for %d users", len(choices), len(inst.Users))
	}
	p := &Profile{
		inst:    inst,
		choices: append([]int(nil), choices...),
		nk:      make([]int, len(inst.Tasks)),
		scratch: make([]int32, len(inst.Tasks)),
	}
	for i, c := range choices {
		u := inst.Users[i]
		if c < 0 || c >= len(u.Routes) {
			return nil, fmt.Errorf("core: user %d choice %d out of range [0,%d)", i, c, len(u.Routes))
		}
		for _, k := range u.Routes[c].Tasks {
			p.nk[k]++
		}
	}
	return p, nil
}

// Instance returns the underlying game instance.
func (p *Profile) Instance() *Instance { return p.inst }

// Choice returns the route index chosen by user i.
func (p *Profile) Choice(i UserID) int { return p.choices[int(i)] }

// Choices returns a copy of all route choices.
func (p *Profile) Choices() []int { return append([]int(nil), p.choices...) }

// Route returns the route currently chosen by user i.
func (p *Profile) Route(i UserID) Route {
	return p.inst.Users[int(i)].Routes[p.choices[int(i)]]
}

// Count returns n_k(s), the number of users performing task k.
func (p *Profile) Count(k task.ID) int { return p.nk[int(k)] }

// SetChoice moves user i to route index c, updating the participant counts
// incrementally (O(|L_old| + |L_new|)).
func (p *Profile) SetChoice(i UserID, c int) {
	u := p.inst.Users[int(i)]
	if c < 0 || c >= len(u.Routes) {
		panic(fmt.Sprintf("core: SetChoice(%d, %d) out of range", i, c))
	}
	old := p.choices[int(i)]
	if old == c {
		return
	}
	for _, k := range u.Routes[old].Tasks {
		p.nk[k]--
	}
	for _, k := range u.Routes[c].Tasks {
		p.nk[k]++
	}
	p.choices[int(i)] = c
}

// Clone returns an independent copy of the profile sharing the instance.
func (p *Profile) Clone() *Profile {
	return &Profile{
		inst:    p.inst,
		choices: append([]int(nil), p.choices...),
		nk:      append([]int(nil), p.nk...),
		scratch: make([]int32, len(p.scratch)),
	}
}

// nextMark advances the scratch epoch; used to mark the current route's
// tasks without clearing the whole slice.
func (p *Profile) nextMark() int32 {
	p.mark++
	if p.mark == 0 { // wrapped: reset
		for i := range p.scratch {
			p.scratch[i] = 0
		}
		p.mark = 1
	}
	return p.mark
}

// Profit returns P_i(s) per Eq. (2) for user i under the current profile.
func (p *Profile) Profit(i UserID) float64 {
	u := p.inst.Users[int(i)]
	r := u.Routes[p.choices[int(i)]]
	var reward float64
	for _, k := range r.Tasks {
		reward += p.inst.Tasks[k].Share(p.nk[k])
	}
	return u.Alpha*reward - u.Beta*p.inst.DetourCost(r) - u.Gamma*p.inst.CongestionCost(r)
}

// RewardOf returns the unweighted task-reward component of user i's profit:
// Σ_{k∈L_si} w_k(n_k)/n_k. Used by the coverage/reward metrics of §5.3.2.
func (p *Profile) RewardOf(i UserID) float64 {
	r := p.Route(i)
	var reward float64
	for _, k := range r.Tasks {
		reward += p.inst.Tasks[k].Share(p.nk[k])
	}
	return reward
}

// ProfitIf returns P_i((c, s_-i)): user i's profit if it unilaterally
// switched to route index c while everyone else stays put. It does not
// mutate the profile. Counts are adjusted as in Theorem 2's proof: tasks
// covered by both routes keep their count; tasks only on the new route gain
// one participant (user i itself).
func (p *Profile) ProfitIf(i UserID, c int) float64 {
	u := p.inst.Users[int(i)]
	cur := u.Routes[p.choices[int(i)]]
	cand := u.Routes[c]
	mark := p.nextMark()
	for _, k := range cur.Tasks {
		p.scratch[k] = mark
	}
	var reward float64
	for _, k := range cand.Tasks {
		n := p.nk[k]
		if p.scratch[k] != mark {
			n++ // user i joins task k
		}
		reward += p.inst.Tasks[k].Share(n)
	}
	return u.Alpha*reward - u.Beta*p.inst.DetourCost(cand) - u.Gamma*p.inst.CongestionCost(cand)
}

// TotalProfit returns Σ_i P_i(s), the objective of the centralized problem
// (Eq. 5).
func (p *Profile) TotalProfit() float64 {
	var total float64
	for i := range p.inst.Users {
		total += p.Profit(UserID(i))
	}
	return total
}

// Potential returns the weighted potential Φ(s) of Eq. (8):
//
//	Φ(s) = Σ_k Σ_{q=1..n_k} w_k(q)/q − Σ_i (β_i/α_i)·d(s_i) − Σ_i (γ_i/α_i)·b(s_i).
func (p *Profile) Potential() float64 {
	var phi float64
	for k, tk := range p.inst.Tasks {
		for q := 1; q <= p.nk[k]; q++ {
			phi += tk.Share(q)
		}
	}
	for i, u := range p.inst.Users {
		r := u.Routes[p.choices[i]]
		phi -= (u.Beta / u.Alpha) * p.inst.DetourCost(r)
		phi -= (u.Gamma / u.Alpha) * p.inst.CongestionCost(r)
	}
	return phi
}

// BetterResponses returns the route indices that strictly improve user i's
// profit over its current choice (Definition 1, better response update).
func (p *Profile) BetterResponses(i UserID) []int {
	cur := p.Profit(i)
	var out []int
	for c := range p.inst.Users[int(i)].Routes {
		if c == p.choices[int(i)] {
			continue
		}
		if p.ProfitIf(i, c) > cur+Eps {
			out = append(out, c)
		}
	}
	return out
}

// BestResponseSet returns Δ_i: the set of route indices achieving the
// maximum profit among all strict improvements (Definition 1, best response
// update; Algorithm 1 line 10). It is empty when the current choice is
// already a best response.
func (p *Profile) BestResponseSet(i UserID) []int {
	cur := p.Profit(i)
	best := cur
	var out []int
	for c := range p.inst.Users[int(i)].Routes {
		if c == p.choices[int(i)] {
			continue
		}
		v := p.ProfitIf(i, c)
		switch {
		case v > best+Eps:
			best = v
			out = out[:0]
			out = append(out, c)
		case v > cur+Eps && v >= best-Eps && len(out) > 0:
			out = append(out, c)
		}
	}
	return out
}

// IsNash reports whether no user has a better response (Definition 2).
func (p *Profile) IsNash() bool {
	for i := range p.inst.Users {
		if len(p.BetterResponses(UserID(i))) > 0 {
			return false
		}
	}
	return true
}

// NashGap returns the largest profit improvement any user could obtain by a
// unilateral deviation. It is 0 (up to Eps) exactly at a Nash equilibrium
// and quantifies how far a profile is from one otherwise.
func (p *Profile) NashGap() float64 {
	var gap float64
	for i := range p.inst.Users {
		u := UserID(i)
		cur := p.Profit(u)
		for c := range p.inst.Users[i].Routes {
			if c == p.choices[i] {
				continue
			}
			if d := p.ProfitIf(u, c) - cur; d > gap {
				gap = d
			}
		}
	}
	return gap
}

// IsEpsilonNash reports whether no user can improve its profit by more than
// eps through a unilateral deviation — the approximate-equilibrium notion
// used when comparing against truncated runs.
func (p *Profile) IsEpsilonNash(eps float64) bool { return p.NashGap() <= eps }

// Tau returns τ_i = (P_i(c, s_-i) − P_i(s))/α_i for a prospective move of
// user i to route index c — the per-user potential increase used by the PUU
// algorithm (Algorithm 3) and the BUAU baseline.
func (p *Profile) Tau(i UserID, c int) float64 {
	u := p.inst.Users[int(i)]
	return (p.ProfitIf(i, c) - p.Profit(i)) / u.Alpha
}

// MoveTasks returns B_i for a prospective move of user i to route index c:
// the union of tasks covered by the current and the new route. Two users
// whose B sets are disjoint can update concurrently without interfering
// (Algorithm 3).
func (p *Profile) MoveTasks(i UserID, c int) []task.ID {
	u := p.inst.Users[int(i)]
	cur := u.Routes[p.choices[int(i)]]
	cand := u.Routes[c]
	mark := p.nextMark()
	out := make([]task.ID, 0, len(cur.Tasks)+len(cand.Tasks))
	for _, k := range cur.Tasks {
		p.scratch[k] = mark
		out = append(out, k)
	}
	for _, k := range cand.Tasks {
		if p.scratch[k] != mark {
			out = append(out, k)
		}
	}
	return out
}

// CoveredTasks returns the number of distinct tasks covered by at least one
// user's chosen route (the numerator of the §5.3.2 coverage metric).
func (p *Profile) CoveredTasks() int {
	n := 0
	for _, c := range p.nk {
		if c > 0 {
			n++
		}
	}
	return n
}

// OverlapRatio returns the Table-3 overlap ratio: the number of tasks with
// more than one participant divided by the total number of tasks.
func (p *Profile) OverlapRatio() float64 {
	if len(p.nk) == 0 {
		return 0
	}
	multi := 0
	for _, c := range p.nk {
		if c > 1 {
			multi++
		}
	}
	return float64(multi) / float64(len(p.nk))
}
