package core

import (
	"fmt"

	"repro/internal/task"
)

// rebaseEvery bounds floating-point drift in the incrementally-maintained
// aggregates: after this many SetChoice calls the accumulators are
// recomputed from scratch. Together with compensated summation this keeps
// Potential/TotalProfit within well under Eps of a from-scratch evaluation
// over arbitrarily long move sequences, at amortized O((M+N)/rebaseEvery)
// per move.
const rebaseEvery = 4096

// Profile is a strategy profile s = (s_1, ..., s_M): one chosen route per
// user, together with the incrementally-maintained participant counts
// n_k(s). All profit and potential evaluations run against a Profile.
//
// Beyond the counts, a Profile caches everything needed to answer the hot
// queries of the decision-slot protocol in O(1) or O(|Δroutes|) instead of
// O(M·N): per-task participant alpha-sums, per-user detour/congestion cost
// terms, a memoized ln-table for w_k(q)/q shares, and compensated running
// sums of the weighted potential Φ (Eq. 8) and the total profit Σ_i P_i
// (Eq. 5), both updated by SetChoice on the symmetric difference of the old
// and new routes only.
type Profile struct {
	inst    *Instance
	choices []int // choices[i] indexes Users[i].Routes
	nk      []int // nk[k] = number of users whose chosen route covers task k

	memo *shareMemo // immutable share table, shared with clones/evaluators

	// alphaSum[k] = Σ_{i: k ∈ L_si} α_i. With it, the reward part of
	// Σ_i P_i collapses to Σ_k alphaSum[k]·share_k(n_k), which a move
	// perturbs only on its touched tasks.
	alphaSum []float64
	// userCost[i] = β_i·d(s_i) + γ_i·b(s_i); userPotCost[i] is the same
	// with the Eq. 8 weights (β_i/α_i, γ_i/α_i).
	userCost    []float64
	userPotCost []float64

	potReward  kahan // Σ_k Σ_{q=1..n_k} w_k(q)/q
	potCost    kahan // Σ_i userPotCost[i]
	profReward kahan // Σ_k alphaSum[k]·share_k(n_k)
	profCost   kahan // Σ_i userCost[i]

	moves int // SetChoice calls since the last rebase

	ev evalState // scratch marks for delta probes on this profile
}

// NewProfile builds a profile from per-user route indices. The slice is
// copied. It returns an error if any index is out of range.
func NewProfile(inst *Instance, choices []int) (*Profile, error) {
	if len(choices) != len(inst.Users) {
		return nil, fmt.Errorf("core: %d choices for %d users", len(choices), len(inst.Users))
	}
	p := &Profile{
		inst:        inst,
		choices:     append([]int(nil), choices...),
		nk:          make([]int, len(inst.Tasks)),
		memo:        newShareMemo(inst),
		alphaSum:    make([]float64, len(inst.Tasks)),
		userCost:    make([]float64, len(inst.Users)),
		userPotCost: make([]float64, len(inst.Users)),
	}
	p.ev.init(p)
	for i, c := range choices {
		u := inst.Users[i]
		if c < 0 || c >= len(u.Routes) {
			return nil, fmt.Errorf("core: user %d choice %d out of range [0,%d)", i, c, len(u.Routes))
		}
		for _, k := range u.Routes[c].Tasks {
			p.nk[k]++
		}
	}
	p.rebase()
	return p, nil
}

// rebase recomputes every cached aggregate from the instance and the
// current choices. It runs at construction and every rebaseEvery moves to
// reset accumulated floating-point drift.
func (p *Profile) rebase() {
	p.moves = 0
	for k := range p.alphaSum {
		p.alphaSum[k] = 0
	}
	p.potReward, p.potCost, p.profReward, p.profCost = kahan{}, kahan{}, kahan{}, kahan{}
	for i, u := range p.inst.Users {
		r := u.Routes[p.choices[i]]
		for _, k := range r.Tasks {
			p.alphaSum[k] += u.Alpha
		}
		d, b := p.inst.DetourCost(r), p.inst.CongestionCost(r)
		p.userCost[i] = u.Beta*d + u.Gamma*b
		p.userPotCost[i] = (u.Beta/u.Alpha)*d + (u.Gamma/u.Alpha)*b
		p.profCost.add(p.userCost[i])
		p.potCost.add(p.userPotCost[i])
	}
	for k := range p.inst.Tasks {
		n := p.nk[k]
		for q := 1; q <= n; q++ {
			p.potReward.add(p.memo.share(k, q))
		}
		if n > 0 {
			p.profReward.add(p.alphaSum[k] * p.memo.share(k, n))
		}
	}
}

// Instance returns the underlying game instance.
func (p *Profile) Instance() *Instance { return p.inst }

// Choice returns the route index chosen by user i.
func (p *Profile) Choice(i UserID) int { return p.choices[int(i)] }

// Choices returns a copy of all route choices.
func (p *Profile) Choices() []int { return append([]int(nil), p.choices...) }

// Route returns the route currently chosen by user i.
func (p *Profile) Route(i UserID) Route {
	return p.inst.Users[int(i)].Routes[p.choices[int(i)]]
}

// Count returns n_k(s), the number of users performing task k.
func (p *Profile) Count(k task.ID) int { return p.nk[int(k)] }

// SetChoice moves user i to route index c, updating the participant counts
// and every cached aggregate incrementally in O(|L_old| + |L_new|). Tasks
// covered by both routes are walked twice with exactly cancelling deltas,
// so no set intersection is needed.
func (p *Profile) SetChoice(i UserID, c int) {
	u := p.inst.Users[int(i)]
	if c < 0 || c >= len(u.Routes) {
		panic(fmt.Sprintf("core: SetChoice(%d, %d) out of range", i, c))
	}
	old := p.choices[int(i)]
	if old == c {
		return
	}
	alpha := u.Alpha
	for _, k := range u.Routes[old].Tasks {
		n, a := p.nk[k], p.alphaSum[k]
		// User i leaves task k: n_k drops to n-1, the alpha-sum loses α_i.
		p.potReward.add(-p.memo.share(int(k), n))
		p.profReward.add((a-alpha)*p.memo.share(int(k), n-1) - a*p.memo.share(int(k), n))
		p.alphaSum[k] = a - alpha
		p.nk[k] = n - 1
	}
	for _, k := range u.Routes[c].Tasks {
		n, a := p.nk[k]+1, p.alphaSum[k]+alpha
		p.potReward.add(p.memo.share(int(k), n))
		p.profReward.add(a*p.memo.share(int(k), n) - (a-alpha)*p.memo.share(int(k), n-1))
		p.alphaSum[k] = a
		p.nk[k] = n
	}
	p.choices[int(i)] = c

	r := u.Routes[c]
	d, b := p.inst.DetourCost(r), p.inst.CongestionCost(r)
	cost := u.Beta*d + u.Gamma*b
	potCost := (u.Beta/u.Alpha)*d + (u.Gamma/u.Alpha)*b
	p.profCost.add(cost - p.userCost[int(i)])
	p.potCost.add(potCost - p.userPotCost[int(i)])
	p.userCost[int(i)] = cost
	p.userPotCost[int(i)] = potCost

	p.moves++
	if p.moves >= rebaseEvery {
		p.rebase()
	}
}

// Clone returns an independent copy of the profile sharing the instance and
// the immutable share memo. All mutable cache state — counts, alpha-sums,
// per-user cost terms, and the compensated Φ / ΣP_i accumulators — is
// copied, so mutating the clone never perturbs the original (and vice
// versa).
func (p *Profile) Clone() *Profile {
	q := &Profile{
		inst:        p.inst,
		choices:     append([]int(nil), p.choices...),
		nk:          append([]int(nil), p.nk...),
		memo:        p.memo,
		alphaSum:    append([]float64(nil), p.alphaSum...),
		userCost:    append([]float64(nil), p.userCost...),
		userPotCost: append([]float64(nil), p.userPotCost...),
		potReward:   p.potReward,
		potCost:     p.potCost,
		profReward:  p.profReward,
		profCost:    p.profCost,
		moves:       p.moves,
	}
	q.ev.init(q)
	return q
}

// Profit returns P_i(s) per Eq. (2) for user i under the current profile.
func (p *Profile) Profit(i UserID) float64 {
	u := p.inst.Users[int(i)]
	r := u.Routes[p.choices[int(i)]]
	var reward float64
	for _, k := range r.Tasks {
		reward += p.memo.share(int(k), p.nk[k])
	}
	return u.Alpha*reward - u.Beta*p.inst.DetourCost(r) - u.Gamma*p.inst.CongestionCost(r)
}

// RewardOf returns the unweighted task-reward component of user i's profit:
// Σ_{k∈L_si} w_k(n_k)/n_k. Used by the coverage/reward metrics of §5.3.2.
func (p *Profile) RewardOf(i UserID) float64 {
	r := p.Route(i)
	var reward float64
	for _, k := range r.Tasks {
		reward += p.memo.share(int(k), p.nk[k])
	}
	return reward
}

// ProfitIf returns P_i((c, s_-i)): user i's profit if it unilaterally
// switched to route index c while everyone else stays put. It does not
// mutate the profile. Counts are adjusted as in Theorem 2's proof: tasks
// covered by both routes keep their count; tasks only on the new route gain
// one participant (user i itself).
func (p *Profile) ProfitIf(i UserID, c int) float64 { return p.ev.profitIf(i, c) }

// ProfitDeltaIf returns P_i((c, s_-i)) − P_i(s) directly, summing shares
// over the symmetric difference of the current and candidate routes only —
// the Eq. 8 locality that makes a best-response probe O(|Δroutes|):
//
//	ΔP_i = α_i·( Σ_{k∈L'\L} w_k(n_k+1)/(n_k+1) − Σ_{k∈L\L'} w_k(n_k)/n_k )
//	       − β_i·(d(r')−d(r)) − γ_i·(b(r')−b(r)).
//
// BetterResponses, BestResponseSet, NashGap, and Tau are all built on it.
func (p *Profile) ProfitDeltaIf(i UserID, c int) float64 { return p.ev.profitDeltaIf(i, c) }

// TotalProfit returns Σ_i P_i(s), the objective of the centralized problem
// (Eq. 5). It reads the cached aggregates in O(1).
func (p *Profile) TotalProfit() float64 {
	return p.profReward.value() - p.profCost.value()
}

// Potential returns the weighted potential Φ(s) of Eq. (8):
//
//	Φ(s) = Σ_k Σ_{q=1..n_k} w_k(q)/q − Σ_i (β_i/α_i)·d(s_i) − Σ_i (γ_i/α_i)·b(s_i).
//
// It reads the cached aggregates in O(1); SetChoice keeps them current.
func (p *Profile) Potential() float64 {
	return p.potReward.value() - p.potCost.value()
}

// BetterResponses returns the route indices that strictly improve user i's
// profit over its current choice (Definition 1, better response update).
func (p *Profile) BetterResponses(i UserID) []int { return p.ev.betterResponses(i) }

// BestResponseSet returns Δ_i: the set of route indices achieving the
// maximum profit among all strict improvements (Definition 1, best response
// update; Algorithm 1 line 10). It is empty when the current choice is
// already a best response.
func (p *Profile) BestResponseSet(i UserID) []int { return p.ev.bestResponseSet(i) }

// IsNash reports whether no user has a better response (Definition 2).
func (p *Profile) IsNash() bool {
	for i := range p.inst.Users {
		if p.ev.hasBetterResponse(UserID(i)) {
			return false
		}
	}
	return true
}

// NashGap returns the largest profit improvement any user could obtain by a
// unilateral deviation. It is 0 (up to Eps) exactly at a Nash equilibrium
// and quantifies how far a profile is from one otherwise.
func (p *Profile) NashGap() float64 {
	var gap float64
	for i := range p.inst.Users {
		if g := p.ev.gapOf(UserID(i)); g > gap {
			gap = g
		}
	}
	return gap
}

// IsEpsilonNash reports whether no user can improve its profit by more than
// eps through a unilateral deviation — the approximate-equilibrium notion
// used when comparing against truncated runs.
func (p *Profile) IsEpsilonNash(eps float64) bool { return p.NashGap() <= eps }

// Tau returns τ_i = (P_i(c, s_-i) − P_i(s))/α_i for a prospective move of
// user i to route index c — the per-user potential increase used by the PUU
// algorithm (Algorithm 3) and the BUAU baseline.
func (p *Profile) Tau(i UserID, c int) float64 {
	u := p.inst.Users[int(i)]
	return p.ev.profitDeltaIf(i, c) / u.Alpha
}

// MoveTasks returns B_i for a prospective move of user i to route index c:
// the union of tasks covered by the current and the new route. Two users
// whose B sets are disjoint can update concurrently without interfering
// (Algorithm 3).
func (p *Profile) MoveTasks(i UserID, c int) []task.ID { return p.ev.moveTasks(i, c) }

// CoveredTasks returns the number of distinct tasks covered by at least one
// user's chosen route (the numerator of the §5.3.2 coverage metric).
func (p *Profile) CoveredTasks() int {
	n := 0
	for _, c := range p.nk {
		if c > 0 {
			n++
		}
	}
	return n
}

// OverlapRatio returns the Table-3 overlap ratio: the number of tasks with
// more than one participant divided by the total number of tasks.
func (p *Profile) OverlapRatio() float64 {
	if len(p.nk) == 0 {
		return 0
	}
	multi := 0
	for _, c := range p.nk {
		if c > 1 {
			multi++
		}
	}
	return float64(multi) / float64(len(p.nk))
}
