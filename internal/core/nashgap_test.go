package core

import (
	"math"
	"testing"

	"repro/internal/rng"
)

func TestNashGapZeroAtEquilibrium(t *testing.T) {
	s := rng.New(31)
	for trial := 0; trial < 10; trial++ {
		in := RandomInstance(DefaultRandomConfig(6, 8), s.Child())
		p := RandomProfile(in, s.Child())
		// Drive to equilibrium with simple best-response sweeps.
		for moved := true; moved; {
			moved = false
			for i := range in.Users {
				if d := p.BestResponseSet(UserID(i)); len(d) > 0 {
					p.SetChoice(UserID(i), d[0])
					moved = true
				}
			}
		}
		if !p.IsNash() {
			t.Fatal("sweep did not reach Nash")
		}
		if gap := p.NashGap(); gap > Eps {
			t.Errorf("trial %d: NashGap = %v at equilibrium", trial, gap)
		}
		if !p.IsEpsilonNash(Eps) {
			t.Error("IsEpsilonNash(Eps) false at equilibrium")
		}
	}
}

func TestNashGapMeasuresImprovement(t *testing.T) {
	in := twoUserInstance()
	p := mustProfile(t, in, []int{0, 0})
	// Compute the expected maximal unilateral improvement by hand.
	want := 0.0
	for i := range in.Users {
		cur := p.Profit(UserID(i))
		for c := range in.Users[i].Routes {
			if c == p.Choice(UserID(i)) {
				continue
			}
			if d := p.ProfitIf(UserID(i), c) - cur; d > want {
				want = d
			}
		}
	}
	if got := p.NashGap(); math.Abs(got-want) > 1e-12 {
		t.Errorf("NashGap = %v, want %v", got, want)
	}
	if want > 0 && p.IsEpsilonNash(want/2) {
		t.Error("IsEpsilonNash true below the actual gap")
	}
	if !p.IsEpsilonNash(want) {
		t.Error("IsEpsilonNash false at the actual gap")
	}
}

func TestNashGapConsistentWithIsNash(t *testing.T) {
	s := rng.New(37)
	for trial := 0; trial < 50; trial++ {
		in := RandomInstance(DefaultRandomConfig(5, 7), s.Child())
		p := RandomProfile(in, s.Child())
		nash := p.IsNash()
		gap := p.NashGap()
		if nash && gap > Eps {
			t.Fatalf("trial %d: IsNash but gap %v", trial, gap)
		}
		if !nash && gap <= Eps {
			t.Fatalf("trial %d: not Nash but gap %v", trial, gap)
		}
	}
}
