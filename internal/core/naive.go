package core

import (
	"fmt"

	"repro/internal/task"
)

// Naive is the differential-testing oracle for Profile: a deliberately
// simple reference implementation of the same game semantics that caches
// nothing. Every query recomputes the participant counts n_k from the
// stored choices and evaluates profits and the potential directly from the
// Eq. (1)–(8) definitions via task.Share (including its math.Log call).
//
// It exists so that the incremental evaluation layer — memoized share
// tables, alpha-sums, compensated Φ/ΣP_i accumulators — can be checked
// against an implementation too simple to share its bugs. Differential
// property tests and FuzzProfileMoves replay random move sequences through
// both and assert agreement; the benchmark suite uses it as the
// from-scratch baseline the cached path is measured against.
//
// Complexity is intentionally poor: O(M·L̄) per profit query and O(M·R·M·L̄)
// per NashGap. Never use it outside tests and benchmarks.
type Naive struct {
	inst    *Instance
	choices []int
}

// NewNaive builds an oracle over the instance with the given initial route
// choices (copied). It returns an error if any index is out of range.
func NewNaive(inst *Instance, choices []int) (*Naive, error) {
	if len(choices) != len(inst.Users) {
		return nil, fmt.Errorf("core: %d choices for %d users", len(choices), len(inst.Users))
	}
	for i, c := range choices {
		if c < 0 || c >= len(inst.Users[i].Routes) {
			return nil, fmt.Errorf("core: user %d choice %d out of range [0,%d)", i, c, len(inst.Users[i].Routes))
		}
	}
	return &Naive{inst: inst, choices: append([]int(nil), choices...)}, nil
}

// SetChoice records the move; nothing is maintained incrementally.
func (o *Naive) SetChoice(i UserID, c int) {
	if c < 0 || c >= len(o.inst.Users[int(i)].Routes) {
		panic(fmt.Sprintf("core: Naive.SetChoice(%d, %d) out of range", i, c))
	}
	o.choices[int(i)] = c
}

// Choice returns the route index chosen by user i.
func (o *Naive) Choice(i UserID) int { return o.choices[int(i)] }

// Choices returns a copy of all route choices.
func (o *Naive) Choices() []int { return append([]int(nil), o.choices...) }

// Counts recomputes n_k(s) from scratch for every task.
func (o *Naive) Counts() []int {
	nk := make([]int, len(o.inst.Tasks))
	for i, c := range o.choices {
		for _, k := range o.inst.Users[i].Routes[c].Tasks {
			nk[k]++
		}
	}
	return nk
}

// Count returns n_k(s) for one task, recomputed from scratch.
func (o *Naive) Count(k task.ID) int { return o.Counts()[int(k)] }

// profitWith evaluates P_i under an explicit choice vector, recomputing
// counts from scratch.
func (o *Naive) profitWith(choices []int, i UserID) float64 {
	nk := make([]int, len(o.inst.Tasks))
	for j, c := range choices {
		for _, k := range o.inst.Users[j].Routes[c].Tasks {
			nk[k]++
		}
	}
	u := o.inst.Users[int(i)]
	r := u.Routes[choices[int(i)]]
	var reward float64
	for _, k := range r.Tasks {
		reward += o.inst.Tasks[k].Share(nk[k])
	}
	return u.Alpha*reward - u.Beta*o.inst.DetourCost(r) - u.Gamma*o.inst.CongestionCost(r)
}

// Profit returns P_i(s) per Eq. (2).
func (o *Naive) Profit(i UserID) float64 { return o.profitWith(o.choices, i) }

// ProfitIf returns P_i((c, s_-i)) by evaluating the deviated choice vector
// from scratch.
func (o *Naive) ProfitIf(i UserID, c int) float64 {
	dev := append([]int(nil), o.choices...)
	dev[int(i)] = c
	return o.profitWith(dev, i)
}

// TotalProfit returns Σ_i P_i(s) (Eq. 5), one from-scratch profit per user.
func (o *Naive) TotalProfit() float64 {
	var total float64
	for i := range o.inst.Users {
		total += o.Profit(UserID(i))
	}
	return total
}

// Potential returns Φ(s) per Eq. (8), recomputed from the definition.
func (o *Naive) Potential() float64 {
	nk := o.Counts()
	var phi float64
	for k, tk := range o.inst.Tasks {
		for q := 1; q <= nk[k]; q++ {
			phi += tk.Share(q)
		}
	}
	for i, u := range o.inst.Users {
		r := u.Routes[o.choices[i]]
		phi -= (u.Beta / u.Alpha) * o.inst.DetourCost(r)
		phi -= (u.Gamma / u.Alpha) * o.inst.CongestionCost(r)
	}
	return phi
}

// BestResponseSet mirrors Profile.BestResponseSet's Eps-band semantics on
// from-scratch profit evaluations.
func (o *Naive) BestResponseSet(i UserID) []int {
	cur := o.Profit(i)
	best := cur
	var out []int
	for c := range o.inst.Users[int(i)].Routes {
		if c == o.choices[int(i)] {
			continue
		}
		v := o.ProfitIf(i, c)
		switch {
		case v > best+Eps:
			best = v
			out = out[:0]
			out = append(out, c)
		case v > cur+Eps && v >= best-Eps && len(out) > 0:
			out = append(out, c)
		}
	}
	return out
}

// NashGap returns the largest unilateral profit improvement, every probe
// evaluated from scratch.
func (o *Naive) NashGap() float64 {
	var gap float64
	for i := range o.inst.Users {
		u := UserID(i)
		cur := o.Profit(u)
		for c := range o.inst.Users[i].Routes {
			if c == o.choices[i] {
				continue
			}
			if d := o.ProfitIf(u, c) - cur; d > gap {
				gap = d
			}
		}
	}
	return gap
}
