package core

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/rng"
)

// FuzzReadJSON ensures the instance decoder never panics and that accepted
// documents describe valid instances that round-trip.
func FuzzReadJSON(f *testing.F) {
	// Seed with a real serialized instance plus malformed variants.
	var buf bytes.Buffer
	in := RandomInstance(DefaultRandomConfig(3, 4), rng.New(1))
	if err := in.WriteJSON(&buf); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.String())
	f.Add(`{"version":1,"phi":0.5,"theta":0.5,"tasks":[],"users":[]}`)
	f.Add(`{"version":2}`)
	f.Add(`{`)
	f.Add(``)
	f.Add(`{"version":1,"phi":0.5,"theta":0.5,"tasks":[{"a":10,"mu":0}],"users":[{"alpha":0.5,"beta":0.5,"gamma":0.5,"routes":[{"tasks":[0],"detour":1,"congestion":1}]}]}`)
	f.Fuzz(func(t *testing.T, doc string) {
		in, err := ReadJSON(strings.NewReader(doc))
		if err != nil {
			return
		}
		// Whatever the decoder accepts must be valid and serializable.
		if err := in.Validate(); err != nil {
			t.Fatalf("accepted invalid instance: %v", err)
		}
		var out bytes.Buffer
		if err := in.WriteJSON(&out); err != nil {
			t.Fatalf("accepted instance failed to re-serialize: %v", err)
		}
		again, err := ReadJSON(&out)
		if err != nil {
			t.Fatalf("round trip failed: %v", err)
		}
		if again.NumUsers() != in.NumUsers() || again.NumTasks() != in.NumTasks() {
			t.Fatal("round trip changed sizes")
		}
	})
}
