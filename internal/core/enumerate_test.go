package core

import (
	"math"
	"testing"

	"repro/internal/rng"
)

func TestProfileCount(t *testing.T) {
	in := twoUserInstance() // 2 routes × 2 routes
	if c := ProfileCount(in); c != 4 {
		t.Errorf("ProfileCount = %d, want 4", c)
	}
}

func TestForEachProfileVisitsAll(t *testing.T) {
	in := twoUserInstance()
	seen := map[[2]int]bool{}
	err := ForEachProfile(in, func(p *Profile) bool {
		seen[[2]int{p.Choice(0), p.Choice(1)}] = true
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) != 4 {
		t.Errorf("visited %d profiles, want 4", len(seen))
	}
}

func TestForEachProfileEarlyStop(t *testing.T) {
	in := twoUserInstance()
	visits := 0
	err := ForEachProfile(in, func(*Profile) bool {
		visits++
		return visits < 2
	})
	if err != nil {
		t.Fatal(err)
	}
	if visits != 2 {
		t.Errorf("visits = %d, want 2", visits)
	}
}

func TestPureEquilibriaExist(t *testing.T) {
	// Theorem 2: every valid instance has at least one pure equilibrium.
	s := rng.New(61)
	for trial := 0; trial < 20; trial++ {
		in := RandomInstance(DefaultRandomConfig(5, 8), s.Child())
		eqs, err := PureEquilibria(in, 0)
		if err != nil {
			t.Fatal(err)
		}
		if len(eqs) == 0 {
			t.Fatalf("trial %d: no pure equilibrium (contradicts Theorem 2)", trial)
		}
		for _, eq := range eqs {
			p, err := NewProfile(in, eq)
			if err != nil {
				t.Fatal(err)
			}
			if !p.IsNash() {
				t.Fatalf("trial %d: enumerated non-equilibrium %v", trial, eq)
			}
		}
	}
}

func TestPureEquilibriaLimit(t *testing.T) {
	in := RandomInstance(DefaultRandomConfig(12, 8), rng.New(3))
	if _, err := PureEquilibria(in, 10); err == nil {
		t.Error("oversized strategy space accepted")
	}
	if _, err := PureEquilibria(&Instance{}, 0); err == nil {
		t.Error("invalid instance accepted")
	}
}

func TestWorstEquilibrium(t *testing.T) {
	s := rng.New(71)
	for trial := 0; trial < 10; trial++ {
		in := RandomInstance(DefaultRandomConfig(5, 8), s.Child())
		choices, total, err := WorstEquilibrium(in, 0)
		if err != nil {
			t.Fatal(err)
		}
		p, err := NewProfile(in, choices)
		if err != nil {
			t.Fatal(err)
		}
		if !p.IsNash() {
			t.Fatal("worst equilibrium is not Nash")
		}
		if math.Abs(p.TotalProfit()-total) > 1e-9 {
			t.Fatalf("reported total %v != realized %v", total, p.TotalProfit())
		}
		// No enumerated equilibrium has a lower total.
		eqs, err := PureEquilibria(in, 0)
		if err != nil {
			t.Fatal(err)
		}
		for _, eq := range eqs {
			q, _ := NewProfile(in, eq)
			if q.TotalProfit() < total-1e-9 {
				t.Fatalf("equilibrium %v has lower total than the 'worst'", eq)
			}
		}
	}
}
