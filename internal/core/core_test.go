package core

import (
	"math"
	"testing"

	"repro/internal/rng"
	"repro/internal/task"
)

// twoUserInstance builds a small hand-checkable instance:
//
//	task 0: a=6, µ=0      task 1: a=10, µ=0.5
//	user 0: route 0 covers {0}, detour 0, congestion 2
//	        route 1 covers {1}, detour 4, congestion 0
//	user 1: route 0 covers {0,1}, detour 2, congestion 1
//	        route 1 covers {},    detour 0, congestion 3
func twoUserInstance() *Instance {
	return &Instance{
		Phi:   0.5,
		Theta: 0.25,
		Tasks: []task.Task{
			{ID: 0, A: 6, Mu: 0},
			{ID: 1, A: 10, Mu: 0.5},
		},
		Users: []User{
			{
				ID: 0, Alpha: 1, Beta: 1, Gamma: 1,
				Routes: []Route{
					{User: 0, Tasks: []task.ID{0}, Detour: 0, Congestion: 2},
					{User: 0, Tasks: []task.ID{1}, Detour: 4, Congestion: 0},
				},
			},
			{
				ID: 1, Alpha: 2, Beta: 0.5, Gamma: 0.25,
				Routes: []Route{
					{User: 1, Tasks: []task.ID{0, 1}, Detour: 2, Congestion: 1},
					{User: 1, Tasks: nil, Detour: 0, Congestion: 3},
				},
			},
		},
	}
}

func mustProfile(t *testing.T, in *Instance, choices []int) *Profile {
	t.Helper()
	p, err := NewProfile(in, choices)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestValidateAcceptsGood(t *testing.T) {
	if err := twoUserInstance().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejectsBad(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Instance)
	}{
		{"no users", func(in *Instance) { in.Users = nil }},
		{"phi=0", func(in *Instance) { in.Phi = 0 }},
		{"phi=1", func(in *Instance) { in.Phi = 1 }},
		{"theta out of range", func(in *Instance) { in.Theta = 1.5 }},
		{"bad task index", func(in *Instance) { in.Tasks[1].ID = 0 }},
		{"bad task params", func(in *Instance) { in.Tasks[0].A = -1 }},
		{"bad user index", func(in *Instance) { in.Users[0].ID = 5 }},
		{"zero alpha", func(in *Instance) { in.Users[0].Alpha = 0 }},
		{"negative beta", func(in *Instance) { in.Users[1].Beta = -0.5 }},
		{"empty route set", func(in *Instance) { in.Users[0].Routes = nil }},
		{"route wrong owner", func(in *Instance) { in.Users[0].Routes[0].User = 1 }},
		{"negative detour", func(in *Instance) { in.Users[0].Routes[1].Detour = -1 }},
		{"unknown task", func(in *Instance) { in.Users[0].Routes[0].Tasks = []task.ID{9} }},
		{"duplicate task on route", func(in *Instance) { in.Users[0].Routes[0].Tasks = []task.ID{0, 0} }},
	}
	for _, c := range cases {
		in := twoUserInstance()
		c.mutate(in)
		if err := in.Validate(); err == nil {
			t.Errorf("%s: Validate accepted bad instance", c.name)
		}
	}
}

func TestCounts(t *testing.T) {
	in := twoUserInstance()
	p := mustProfile(t, in, []int{0, 0}) // both cover task 0; user1 also task 1
	if p.Count(0) != 2 || p.Count(1) != 1 {
		t.Errorf("counts = %d,%d want 2,1", p.Count(0), p.Count(1))
	}
	p.SetChoice(0, 1) // user0 moves to task 1
	if p.Count(0) != 1 || p.Count(1) != 2 {
		t.Errorf("after move counts = %d,%d want 1,2", p.Count(0), p.Count(1))
	}
	p.SetChoice(1, 1) // user1 leaves both tasks
	if p.Count(0) != 0 || p.Count(1) != 1 {
		t.Errorf("after second move counts = %d,%d want 0,1", p.Count(0), p.Count(1))
	}
	// No-op move.
	p.SetChoice(1, 1)
	if p.Count(1) != 1 {
		t.Error("no-op move changed counts")
	}
}

func TestProfitEq2(t *testing.T) {
	in := twoUserInstance()
	p := mustProfile(t, in, []int{0, 0})
	// User 0, route 0: reward = share of task0 with n=2 = 6/2 = 3.
	// P_0 = 1*3 − 1*(0.5*0) − 1*(0.25*2) = 3 − 0.5 = 2.5
	if got := p.Profit(0); math.Abs(got-2.5) > 1e-12 {
		t.Errorf("P_0 = %v, want 2.5", got)
	}
	// User 1, route 0: reward = 6/2 + (10+0.5*ln1)/1 = 3 + 10 = 13.
	// P_1 = 2*13 − 0.5*(0.5*2) − 0.25*(0.25*1) = 26 − 0.5 − 0.0625 = 25.4375
	if got := p.Profit(1); math.Abs(got-25.4375) > 1e-12 {
		t.Errorf("P_1 = %v, want 25.4375", got)
	}
	if got := p.TotalProfit(); math.Abs(got-27.9375) > 1e-12 {
		t.Errorf("total = %v, want 27.9375", got)
	}
}

func TestProfitIfMatchesMutation(t *testing.T) {
	in := twoUserInstance()
	for _, start := range [][]int{{0, 0}, {0, 1}, {1, 0}, {1, 1}} {
		p := mustProfile(t, in, start)
		for i := range in.Users {
			for c := range in.Users[i].Routes {
				want := func() float64 {
					q := p.Clone()
					q.SetChoice(UserID(i), c)
					return q.Profit(UserID(i))
				}()
				if got := p.ProfitIf(UserID(i), c); math.Abs(got-want) > 1e-12 {
					t.Errorf("start=%v ProfitIf(%d,%d) = %v, want %v", start, i, c, got, want)
				}
			}
		}
	}
}

func TestRewardOf(t *testing.T) {
	in := twoUserInstance()
	p := mustProfile(t, in, []int{0, 0})
	if got := p.RewardOf(0); math.Abs(got-3) > 1e-12 {
		t.Errorf("RewardOf(0) = %v, want 3", got)
	}
	if got := p.RewardOf(1); math.Abs(got-13) > 1e-12 {
		t.Errorf("RewardOf(1) = %v, want 13", got)
	}
}

func TestPotentialEq8(t *testing.T) {
	in := twoUserInstance()
	p := mustProfile(t, in, []int{0, 0})
	// Task 0 (n=2): 6/1 + 6/2 = 9. Task 1 (n=1): 10.
	// Cost part: user0 route0: (1/1)*(0.5*0) + (1/1)*(0.25*2) = 0.5
	//            user1 route0: (0.5/2)*(0.5*2) + (0.25/2)*(0.25*1) = 0.25 + 0.03125
	want := 9.0 + 10.0 - 0.5 - 0.25 - 0.03125
	if got := p.Potential(); math.Abs(got-want) > 1e-12 {
		t.Errorf("Φ = %v, want %v", got, want)
	}
}

// TestTheorem2Identity verifies P_i(s') − P_i(s) = α_i(Φ(s') − Φ(s)) on the
// hand-built instance for every user and every move (Eq. 11).
func TestTheorem2Identity(t *testing.T) {
	in := twoUserInstance()
	for _, start := range [][]int{{0, 0}, {0, 1}, {1, 0}, {1, 1}} {
		p := mustProfile(t, in, start)
		for i := range in.Users {
			for c := range in.Users[i].Routes {
				q := p.Clone()
				q.SetChoice(UserID(i), c)
				dP := q.Profit(UserID(i)) - p.Profit(UserID(i))
				dPhi := q.Potential() - p.Potential()
				if math.Abs(dP-in.Users[i].Alpha*dPhi) > 1e-9 {
					t.Errorf("start=%v user=%d move=%d: ΔP=%v α·ΔΦ=%v", start, i, c, dP, in.Users[i].Alpha*dPhi)
				}
			}
		}
	}
}

func TestBetterAndBestResponses(t *testing.T) {
	// One user, three routes with distinct profits.
	in := &Instance{
		Phi: 0.5, Theta: 0.5,
		Tasks: []task.Task{{ID: 0, A: 10, Mu: 0}, {ID: 1, A: 20 - 1e-6, Mu: 0}},
		Users: []User{{
			ID: 0, Alpha: 1, Beta: 1, Gamma: 1,
			Routes: []Route{
				{User: 0, Tasks: nil},                             // profit 0
				{User: 0, Tasks: []task.ID{0}},                    // profit 10
				{User: 0, Tasks: []task.ID{1}},                    // profit ~20
				{User: 0, Tasks: []task.ID{0}, Detour: 2},         // profit 9
				{User: 0, Tasks: []task.ID{1}, Congestion: 2e-10}, // ties route 2 within Eps
			},
		}},
	}
	p := mustProfile(t, in, []int{0})
	better := p.BetterResponses(0)
	if len(better) != 4 {
		t.Errorf("BetterResponses = %v, want 4 routes", better)
	}
	best := p.BestResponseSet(0)
	if len(best) != 2 || best[0] != 2 || best[1] != 4 {
		t.Errorf("BestResponseSet = %v, want [2 4] (tied within Eps)", best)
	}
	// From the best route: no improvement available.
	p.SetChoice(0, 2)
	if got := p.BestResponseSet(0); len(got) != 0 {
		t.Errorf("BestResponseSet at optimum = %v", got)
	}
	if got := p.BetterResponses(0); len(got) != 0 {
		t.Errorf("BetterResponses at optimum = %v", got)
	}
	if !p.IsNash() {
		t.Error("single user at optimum should be Nash")
	}
}

func TestTau(t *testing.T) {
	in := twoUserInstance()
	p := mustProfile(t, in, []int{0, 0})
	for i := range in.Users {
		for c := range in.Users[i].Routes {
			want := (p.ProfitIf(UserID(i), c) - p.Profit(UserID(i))) / in.Users[i].Alpha
			if got := p.Tau(UserID(i), c); math.Abs(got-want) > 1e-12 {
				t.Errorf("Tau(%d,%d) = %v, want %v", i, c, got, want)
			}
		}
	}
}

func TestMoveTasks(t *testing.T) {
	in := twoUserInstance()
	p := mustProfile(t, in, []int{0, 0})
	// User 0 moving from route 0 (task 0) to route 1 (task 1): B = {0,1}.
	b := p.MoveTasks(0, 1)
	if len(b) != 2 {
		t.Fatalf("MoveTasks = %v", b)
	}
	seen := map[task.ID]bool{}
	for _, k := range b {
		if seen[k] {
			t.Fatalf("duplicate task in MoveTasks: %v", b)
		}
		seen[k] = true
	}
	if !seen[0] || !seen[1] {
		t.Errorf("MoveTasks = %v, want {0,1}", b)
	}
	// User 1 moving route0 -> route0 union is just {0,1} without dupes.
	b2 := p.MoveTasks(1, 0)
	if len(b2) != 2 {
		t.Errorf("self MoveTasks = %v", b2)
	}
}

func TestCoverageAndOverlap(t *testing.T) {
	in := twoUserInstance()
	p := mustProfile(t, in, []int{0, 0})
	if got := p.CoveredTasks(); got != 2 {
		t.Errorf("CoveredTasks = %d", got)
	}
	if got := p.OverlapRatio(); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("OverlapRatio = %v, want 0.5 (task 0 shared)", got)
	}
	p.SetChoice(1, 1)
	if got := p.CoveredTasks(); got != 1 {
		t.Errorf("CoveredTasks after move = %d", got)
	}
	if got := p.OverlapRatio(); got != 0 {
		t.Errorf("OverlapRatio after move = %v", got)
	}
}

func TestWeightBounds(t *testing.T) {
	in := twoUserInstance()
	lo, hi := in.WeightBounds()
	if lo != 0.25 || hi != 2 {
		t.Errorf("WeightBounds = %v,%v want 0.25,2", lo, hi)
	}
	in.EMin, in.EMax = 0.1, 0.9
	lo, hi = in.WeightBounds()
	if lo != 0.1 || hi != 0.9 {
		t.Errorf("explicit WeightBounds = %v,%v", lo, hi)
	}
	empty := &Instance{}
	if lo, hi = empty.WeightBounds(); lo != 0 || hi != 0 {
		t.Errorf("empty WeightBounds = %v,%v", lo, hi)
	}
}

func TestNewProfileValidation(t *testing.T) {
	in := twoUserInstance()
	if _, err := NewProfile(in, []int{0}); err == nil {
		t.Error("wrong-length choices accepted")
	}
	if _, err := NewProfile(in, []int{0, 5}); err == nil {
		t.Error("out-of-range choice accepted")
	}
}

func TestSetChoicePanics(t *testing.T) {
	in := twoUserInstance()
	p := mustProfile(t, in, []int{0, 0})
	defer func() {
		if recover() == nil {
			t.Error("out-of-range SetChoice did not panic")
		}
	}()
	p.SetChoice(0, 7)
}

func TestCloneIndependence(t *testing.T) {
	in := twoUserInstance()
	p := mustProfile(t, in, []int{0, 0})
	q := p.Clone()
	q.SetChoice(0, 1)
	if p.Choice(0) != 0 || p.Count(1) != 1 {
		t.Error("Clone shares state with original")
	}
	if q.Choice(0) != 1 || q.Count(1) != 2 {
		t.Error("Clone mutation lost")
	}
}

func TestChoicesCopy(t *testing.T) {
	in := twoUserInstance()
	p := mustProfile(t, in, []int{0, 0})
	cs := p.Choices()
	cs[0] = 1
	if p.Choice(0) != 0 {
		t.Error("Choices returned aliased slice")
	}
}

func TestRandomInstanceValid(t *testing.T) {
	s := rng.New(20)
	for trial := 0; trial < 50; trial++ {
		in := RandomInstance(DefaultRandomConfig(8, 12), s.Child())
		if err := in.Validate(); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
}

func TestRandomProfileInRange(t *testing.T) {
	s := rng.New(21)
	in := RandomInstance(DefaultRandomConfig(10, 15), s.Child())
	for trial := 0; trial < 20; trial++ {
		p := RandomProfile(in, s.Child())
		for i, u := range in.Users {
			if c := p.Choice(UserID(i)); c < 0 || c >= len(u.Routes) {
				t.Fatalf("choice out of range: %d", c)
			}
		}
	}
}
