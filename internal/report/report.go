// Package report renders experiment results as fixed-width text tables and
// CSV, the formats the benchmark harness and the vcsnav CLI print.
package report

import (
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Table is a titled grid of string cells.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
}

// New creates a table with the given title and column headers.
func New(title string, columns ...string) *Table {
	return &Table{Title: title, Columns: columns}
}

// Add appends a row. Short rows are padded with empty cells; long rows are
// accepted as-is (the extra cells get headerless columns when printed).
func (t *Table) Add(cells ...string) {
	row := make([]string, len(cells))
	copy(row, cells)
	for len(row) < len(t.Columns) {
		row = append(row, "")
	}
	t.Rows = append(t.Rows, row)
}

// AddF appends a row of float64 cells formatted with F, prefixed by a label.
func (t *Table) AddF(label string, vals ...float64) {
	row := []string{label}
	for _, v := range vals {
		row = append(row, F(v))
	}
	t.Add(row...)
}

// F formats a float compactly (3 decimals, trailing zeros trimmed).
func F(v float64) string {
	s := strconv.FormatFloat(v, 'f', 3, 64)
	s = strings.TrimRight(s, "0")
	s = strings.TrimRight(s, ".")
	if s == "" || s == "-" {
		return "0"
	}
	return s
}

// I formats an int.
func I(v int) string { return strconv.Itoa(v) }

// Fprint renders the table with aligned columns.
func (t *Table) Fprint(w io.Writer) error {
	widths := make([]int, 0, len(t.Columns))
	for _, c := range t.Columns {
		widths = append(widths, len(c))
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i >= len(widths) {
				widths = append(widths, 0)
			}
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	if t.Title != "" {
		if _, err := fmt.Fprintf(w, "# %s\n", t.Title); err != nil {
			return err
		}
	}
	line := func(cells []string) error {
		var b strings.Builder
		for i, width := range widths {
			cell := ""
			if i < len(cells) {
				cell = cells[i]
			}
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(cell)
			b.WriteString(strings.Repeat(" ", width-len(cell)))
		}
		_, err := fmt.Fprintln(w, strings.TrimRight(b.String(), " "))
		return err
	}
	if len(t.Columns) > 0 {
		if err := line(t.Columns); err != nil {
			return err
		}
		sep := make([]string, len(widths))
		for i, wd := range widths {
			sep[i] = strings.Repeat("-", wd)
		}
		if err := line(sep); err != nil {
			return err
		}
	}
	for _, row := range t.Rows {
		if err := line(row); err != nil {
			return err
		}
	}
	return nil
}

// String renders the table to a string.
func (t *Table) String() string {
	var b strings.Builder
	_ = t.Fprint(&b)
	return b.String()
}

// Markdown renders the table as a GitHub-flavored Markdown table, with the
// title as a heading. Pipes in cells are escaped.
func (t *Table) Markdown(w io.Writer) error {
	esc := func(s string) string { return strings.ReplaceAll(s, "|", "\\|") }
	if t.Title != "" {
		if _, err := fmt.Fprintf(w, "### %s\n\n", t.Title); err != nil {
			return err
		}
	}
	cols := t.Columns
	if len(cols) == 0 && len(t.Rows) > 0 {
		cols = make([]string, len(t.Rows[0]))
	}
	writeRow := func(cells []string) error {
		var b strings.Builder
		b.WriteString("|")
		for i := range cols {
			cell := ""
			if i < len(cells) {
				cell = cells[i]
			}
			b.WriteString(" ")
			b.WriteString(esc(cell))
			b.WriteString(" |")
		}
		_, err := fmt.Fprintln(w, b.String())
		return err
	}
	if err := writeRow(cols); err != nil {
		return err
	}
	sep := make([]string, len(cols))
	for i := range sep {
		sep[i] = "---"
	}
	if err := writeRow(sep); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := writeRow(row); err != nil {
			return err
		}
	}
	return nil
}

// CSV writes the table as RFC-4180-ish CSV (quotes only when needed).
func (t *Table) CSV(w io.Writer) error {
	writeRow := func(cells []string) error {
		for i, c := range cells {
			if i > 0 {
				if _, err := io.WriteString(w, ","); err != nil {
					return err
				}
			}
			if strings.ContainsAny(c, ",\"\n") {
				c = `"` + strings.ReplaceAll(c, `"`, `""`) + `"`
			}
			if _, err := io.WriteString(w, c); err != nil {
				return err
			}
		}
		_, err := io.WriteString(w, "\n")
		return err
	}
	if len(t.Columns) > 0 {
		if err := writeRow(t.Columns); err != nil {
			return err
		}
	}
	for _, row := range t.Rows {
		if err := writeRow(row); err != nil {
			return err
		}
	}
	return nil
}
