package report

import (
	"strings"
	"testing"
)

func TestF(t *testing.T) {
	cases := []struct {
		in   float64
		want string
	}{
		{1.5, "1.5"},
		{2, "2"},
		{0.123456, "0.123"},
		{-3.10, "-3.1"},
		{0, "0"},
		{-0.0001, "-0"},
	}
	for _, c := range cases {
		if got := F(c.in); got != c.want {
			t.Errorf("F(%v) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestI(t *testing.T) {
	if I(42) != "42" || I(-7) != "-7" {
		t.Error("I formatting wrong")
	}
}

func TestAddPadsRows(t *testing.T) {
	tb := New("t", "a", "b", "c")
	tb.Add("1")
	if len(tb.Rows[0]) != 3 {
		t.Fatalf("row not padded: %v", tb.Rows[0])
	}
	tb.Add("1", "2", "3", "4") // longer than header: kept
	if len(tb.Rows[1]) != 4 {
		t.Fatalf("long row truncated: %v", tb.Rows[1])
	}
}

func TestAddF(t *testing.T) {
	tb := New("t", "label", "x", "y")
	tb.AddF("row", 1.25, 3)
	if tb.Rows[0][0] != "row" || tb.Rows[0][1] != "1.25" || tb.Rows[0][2] != "3" {
		t.Errorf("AddF row = %v", tb.Rows[0])
	}
}

func TestFprintAlignment(t *testing.T) {
	tb := New("demo", "name", "value")
	tb.Add("alpha", "1")
	tb.Add("b", "22222")
	out := tb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title, header, separator, 2 rows
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "# demo") {
		t.Errorf("title line = %q", lines[0])
	}
	// Columns align: "value" starts at the same offset in all body lines.
	idx := strings.Index(lines[1], "value")
	if idx < 0 {
		t.Fatal("header missing value column")
	}
	if lines[3][idx] != '1' && lines[3][idx] != ' ' {
		t.Errorf("row misaligned: %q", lines[3])
	}
}

func TestFprintNoTitleNoColumns(t *testing.T) {
	tb := &Table{}
	tb.Add("x", "y")
	out := tb.String()
	if strings.Contains(out, "#") {
		t.Error("untitled table printed a title")
	}
	if !strings.Contains(out, "x  y") {
		t.Errorf("row not printed: %q", out)
	}
}

func TestCSV(t *testing.T) {
	tb := New("t", "a", "b")
	tb.Add("1", "hello")
	tb.Add("with,comma", `with"quote`)
	var b strings.Builder
	if err := tb.CSV(&b); err != nil {
		t.Fatal(err)
	}
	want := "a,b\n1,hello\n\"with,comma\",\"with\"\"quote\"\n"
	if b.String() != want {
		t.Errorf("CSV:\n%q\nwant\n%q", b.String(), want)
	}
}

func TestMarkdown(t *testing.T) {
	tb := New("Demo", "name", "value")
	tb.Add("a|b", "1")
	tb.Add("c", "2")
	var b strings.Builder
	if err := tb.Markdown(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.HasPrefix(out, "### Demo\n\n") {
		t.Errorf("missing heading: %q", out)
	}
	if !strings.Contains(out, "| name | value |") {
		t.Errorf("missing header row: %q", out)
	}
	if !strings.Contains(out, "| --- | --- |") {
		t.Errorf("missing separator: %q", out)
	}
	if !strings.Contains(out, `| a\|b | 1 |`) {
		t.Errorf("pipe not escaped: %q", out)
	}
	if !strings.Contains(out, "| c | 2 |") {
		t.Errorf("missing data row: %q", out)
	}
}

func TestMarkdownNoTitle(t *testing.T) {
	tb := &Table{Columns: []string{"x"}}
	tb.Add("1")
	var b strings.Builder
	if err := tb.Markdown(&b); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(b.String(), "###") {
		t.Error("untitled table printed a heading")
	}
}
