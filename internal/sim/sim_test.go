package sim

import (
	"math"
	"testing"

	"repro/internal/geo"
	"repro/internal/rng"
	"repro/internal/roadnet"
	"repro/internal/task"
)

// lineWorld builds a 3-node straight road 0 -(100m)- 1 -(100m)- 2 at 10 m/s
// with two tasks: one on the road, one far away.
func lineWorld(t *testing.T) (*roadnet.Graph, *task.Set, roadnet.Path) {
	t.Helper()
	g := roadnet.NewGraph()
	g.AddNode(geo.Pt(0, 0))
	g.AddNode(geo.Pt(100, 0))
	g.AddNode(geo.Pt(200, 0))
	if err := g.AddRoad(0, 1, 10, 10); err != nil {
		t.Fatal(err)
	}
	if err := g.AddRoad(1, 2, 10, 10); err != nil {
		t.Fatal(err)
	}
	tasks := &task.Set{Tasks: []task.Task{
		{ID: 0, Pos: geo.Pt(150, 5), A: 10},   // on the second edge
		{ID: 1, Pos: geo.Pt(150, 500), A: 10}, // far off the road
	}}
	path, err := g.ShortestPath(0, 2, roadnet.ByLength)
	if err != nil {
		t.Fatal(err)
	}
	return g, tasks, path
}

func TestSingleVehicleDrive(t *testing.T) {
	g, tasks, path := lineWorld(t)
	res, err := Run(g, []Vehicle{{ID: 0, Route: path, Depart: 5}}, Config{
		SenseRadius: 20, Tasks: tasks, RecordEvents: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Reports) != 1 {
		t.Fatalf("reports = %d", len(res.Reports))
	}
	rep := res.Reports[0]
	if rep.DepartTime != 5 {
		t.Errorf("depart = %v", rep.DepartTime)
	}
	// 200 m at 10 m/s = 20 s travel.
	if math.Abs(rep.TravelTime-20) > 1e-9 {
		t.Errorf("travel time = %v, want 20", rep.TravelTime)
	}
	if math.Abs(rep.ArriveTime-25) > 1e-9 {
		t.Errorf("arrive = %v, want 25", rep.ArriveTime)
	}
	if math.Abs(rep.Distance-200) > 1e-9 {
		t.Errorf("distance = %v", rep.Distance)
	}
	// Task 0 sensed at x=150 → 15 s after depart → t=20.
	if len(rep.Sensed) != 1 || rep.Sensed[0] != 0 {
		t.Fatalf("sensed = %v, want [0]", rep.Sensed)
	}
	if math.Abs(rep.SenseTimes[0]-20) > 1e-9 {
		t.Errorf("sense time = %v, want 20", rep.SenseTimes[0])
	}
	if res.Completions[0] != 1 || res.Completions[1] != 0 {
		t.Errorf("completions = %v", res.Completions)
	}
	if res.TasksSensed() != 1 {
		t.Errorf("TasksSensed = %d", res.TasksSensed())
	}
	if math.Abs(res.Makespan-25) > 1e-9 {
		t.Errorf("makespan = %v", res.Makespan)
	}
}

func TestEventOrdering(t *testing.T) {
	g, tasks, path := lineWorld(t)
	res, err := Run(g, []Vehicle{{ID: 0, Route: path}}, Config{
		SenseRadius: 20, Tasks: tasks, RecordEvents: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Events) == 0 {
		t.Fatal("no events recorded")
	}
	for i := 1; i < len(res.Events); i++ {
		if res.Events[i].Time < res.Events[i-1].Time-1e-12 {
			t.Fatalf("events out of order at %d: %v after %v", i, res.Events[i].Time, res.Events[i-1].Time)
		}
	}
	// First event is the departure, last is the arrival.
	if res.Events[0].Kind != EventDepart {
		t.Errorf("first event = %v", res.Events[0].Kind)
	}
	if res.Events[len(res.Events)-1].Kind != EventArrive {
		t.Errorf("last event = %v", res.Events[len(res.Events)-1].Kind)
	}
}

func TestNoEventsWithoutFlag(t *testing.T) {
	g, tasks, path := lineWorld(t)
	res, err := Run(g, []Vehicle{{ID: 0, Route: path}}, Config{SenseRadius: 20, Tasks: tasks})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Events) != 0 {
		t.Error("events recorded without RecordEvents")
	}
	if len(res.Reports[0].Sensed) != 1 {
		t.Error("sensing must work without event recording")
	}
}

func TestSharedTaskCompletions(t *testing.T) {
	g, tasks, path := lineWorld(t)
	res, err := Run(g, []Vehicle{
		{ID: 0, Route: path, Depart: 0},
		{ID: 1, Route: path, Depart: 100},
	}, Config{SenseRadius: 20, Tasks: tasks})
	if err != nil {
		t.Fatal(err)
	}
	if res.Completions[0] != 2 {
		t.Errorf("completions[0] = %d, want 2", res.Completions[0])
	}
	// Realized reward: w_0(2) = 10 + 0·ln2 = 10 (µ=0).
	if got := res.RealizedReward(tasks); math.Abs(got-10) > 1e-9 {
		t.Errorf("realized reward = %v", got)
	}
	if math.Abs(res.Makespan-120) > 1e-9 {
		t.Errorf("makespan = %v", res.Makespan)
	}
	if mt := res.MeanTravelTime(); math.Abs(mt-20) > 1e-9 {
		t.Errorf("mean travel = %v", mt)
	}
}

func TestVehicleSensesTaskOnce(t *testing.T) {
	// A route that passes the same task on two consecutive edges must sense
	// it only once.
	g := roadnet.NewGraph()
	g.AddNode(geo.Pt(0, 0))
	g.AddNode(geo.Pt(100, 0))
	g.AddNode(geo.Pt(100, 100))
	g.AddRoad(0, 1, 10, 10)
	g.AddRoad(1, 2, 10, 10)
	tasks := &task.Set{Tasks: []task.Task{{ID: 0, Pos: geo.Pt(100, 5), A: 10}}}
	path, err := g.ShortestPath(0, 2, roadnet.ByLength)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(g, []Vehicle{{ID: 0, Route: path}}, Config{SenseRadius: 30, Tasks: tasks})
	if err != nil {
		t.Fatal(err)
	}
	if res.Completions[0] != 1 {
		t.Errorf("task sensed %d times by one vehicle", res.Completions[0])
	}
}

func TestRunValidation(t *testing.T) {
	g, _, path := lineWorld(t)
	if _, err := Run(g, []Vehicle{{ID: 0}}, Config{}); err == nil {
		t.Error("empty route accepted")
	}
	if _, err := Run(g, []Vehicle{{ID: 0, Route: path}, {ID: 0, Route: path}}, Config{}); err == nil {
		t.Error("duplicate vehicle IDs accepted")
	}
}

func TestEmptyRun(t *testing.T) {
	g, _, _ := lineWorld(t)
	res, err := Run(g, nil, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Reports) != 0 || res.Makespan != 0 || res.MeanTravelTime() != 0 {
		t.Error("empty run produced non-empty result")
	}
}

func TestEventKindString(t *testing.T) {
	if EventDepart.String() != "depart" || EventArrive.String() != "arrive" ||
		EventSense.String() != "sense" || EventEdgeEnter.String() != "edge-enter" {
		t.Error("EventKind strings wrong")
	}
	if EventKind(99).String() != "unknown" {
		t.Error("unknown EventKind string wrong")
	}
}

// Integration: on a generated city, sim travel times equal the path's
// analytic time, and every vehicle arrives.
func TestCityDriveConsistency(t *testing.T) {
	g := roadnet.GenerateCity(roadnet.DefaultCity(roadnet.GridCity), rng.New(7))
	s := rng.New(8)
	var vehicles []Vehicle
	var wantTimes []float64
	for i := 0; i < 20; i++ {
		src := roadnet.NodeID(s.Intn(g.NumNodes()))
		dst := roadnet.NodeID(s.Intn(g.NumNodes()))
		if src == dst {
			continue
		}
		p, err := g.ShortestPath(src, dst, roadnet.ByTime)
		if err != nil {
			t.Fatal(err)
		}
		vehicles = append(vehicles, Vehicle{ID: len(vehicles), Route: p, Depart: s.Uniform(0, 100)})
		wantTimes = append(wantTimes, p.Time)
	}
	res, err := Run(g, vehicles, Config{})
	if err != nil {
		t.Fatal(err)
	}
	for i, rep := range res.Reports {
		if math.Abs(rep.TravelTime-wantTimes[i]) > 1e-6 {
			t.Fatalf("vehicle %d: realized travel %v != path time %v", i, rep.TravelTime, wantTimes[i])
		}
	}
}
