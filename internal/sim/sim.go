// Package sim is the execution substrate: a discrete-event simulator that
// drives vehicles along their equilibrium-selected routes through the road
// network, has them perform the sensing tasks they pass, and reports the
// realized outcome (completion times, sensed tasks, travel times).
//
// The game of internal/core decides *what* each user does; this package
// simulates *what then happens on the road* — the part of the paper's
// trace-based evaluation where selected routes are actually driven. It lets
// integration tests verify end-to-end consistency: every task the game
// says a route covers is sensed when the route is driven, and route costs
// (detour, congestion) match the realized drive.
package sim

import (
	"container/heap"
	"fmt"
	"sort"

	"repro/internal/geo"
	"repro/internal/roadnet"
	"repro/internal/task"
)

// EventKind discriminates simulation events.
type EventKind int

// Event kinds.
const (
	// EventDepart fires when a vehicle enters the network.
	EventDepart EventKind = iota
	// EventEdgeEnter fires when a vehicle starts traversing an edge.
	EventEdgeEnter
	// EventSense fires when a vehicle passes within sensing range of a task.
	EventSense
	// EventArrive fires when a vehicle reaches its destination.
	EventArrive
)

// String implements fmt.Stringer.
func (k EventKind) String() string {
	switch k {
	case EventDepart:
		return "depart"
	case EventEdgeEnter:
		return "edge-enter"
	case EventSense:
		return "sense"
	case EventArrive:
		return "arrive"
	}
	return "unknown"
}

// Event is one timestamped simulation occurrence.
type Event struct {
	Time    float64
	Kind    EventKind
	Vehicle int
	// Edge is set for EventEdgeEnter.
	Edge roadnet.EdgeID
	// Task is set for EventSense.
	Task task.ID
	// Pos is the vehicle position at the event.
	Pos geo.Point
}

// Vehicle is one simulated driver: a route to drive and a departure time.
type Vehicle struct {
	ID     int
	Route  roadnet.Path
	Depart float64
}

// Config parametrizes a simulation run.
type Config struct {
	// SenseRadius is the distance within which a passing vehicle performs a
	// task (matches the scenario builder's coverage radius).
	SenseRadius float64
	// Tasks to sense; may be nil for a pure mobility run.
	Tasks *task.Set
	// RecordEvents keeps the full event log in the result (memory-heavy for
	// large runs; per-vehicle summaries are always kept).
	RecordEvents bool
}

// VehicleReport summarizes one vehicle's realized drive.
type VehicleReport struct {
	Vehicle    int
	DepartTime float64
	ArriveTime float64
	// TravelTime = ArriveTime - DepartTime.
	TravelTime float64
	// Distance driven in meters.
	Distance float64
	// Sensed lists the tasks performed, in sensing order.
	Sensed []task.ID
	// SenseTimes[i] is when Sensed[i] was performed.
	SenseTimes []float64
}

// Result of a simulation run.
type Result struct {
	Reports []VehicleReport
	Events  []Event // only when Config.RecordEvents
	// Completions maps each task to the number of distinct vehicles that
	// sensed it (the realized n_k).
	Completions map[task.ID]int
	// Makespan is the latest arrival time.
	Makespan float64
}

// eventHeap orders pending events by time, breaking ties by vehicle then
// kind for determinism.
type eventHeap []Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].Time != h[j].Time {
		return h[i].Time < h[j].Time
	}
	if h[i].Vehicle != h[j].Vehicle {
		return h[i].Vehicle < h[j].Vehicle
	}
	return h[i].Kind < h[j].Kind
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(Event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// Run simulates all vehicles through the network. Vehicles are independent
// (congestion is already baked into edge speeds), so the event interleaving
// is deterministic given the inputs.
func Run(g *roadnet.Graph, vehicles []Vehicle, cfg Config) (*Result, error) {
	res := &Result{Completions: map[task.ID]int{}}
	h := &eventHeap{}
	type vstate struct {
		report   VehicleReport
		edgeIdx  int
		sensed   map[task.ID]bool
		route    roadnet.Path
		finished bool
	}
	states := make(map[int]*vstate, len(vehicles))
	for _, v := range vehicles {
		if len(v.Route.Nodes) == 0 {
			return nil, fmt.Errorf("sim: vehicle %d has an empty route", v.ID)
		}
		if _, dup := states[v.ID]; dup {
			return nil, fmt.Errorf("sim: duplicate vehicle ID %d", v.ID)
		}
		states[v.ID] = &vstate{
			report: VehicleReport{Vehicle: v.ID, DepartTime: v.Depart},
			sensed: map[task.ID]bool{},
			route:  v.Route,
		}
		heap.Push(h, Event{Time: v.Depart, Kind: EventDepart, Vehicle: v.ID, Pos: g.Pos(v.Route.Nodes[0])})
	}
	record := func(e Event) {
		if cfg.RecordEvents {
			res.Events = append(res.Events, e)
		}
	}
	// scheduleEdge enqueues the edge-enter event for state s's next edge (or
	// arrival when the route is exhausted).
	scheduleEdge := func(s *vstate, now float64) {
		if s.edgeIdx >= len(s.route.Edges) {
			heap.Push(h, Event{
				Time: now, Kind: EventArrive, Vehicle: s.report.Vehicle,
				Pos: g.Pos(s.route.Nodes[len(s.route.Nodes)-1]),
			})
			return
		}
		eid := s.route.Edges[s.edgeIdx]
		heap.Push(h, Event{
			Time: now, Kind: EventEdgeEnter, Vehicle: s.report.Vehicle, Edge: eid,
			Pos: g.Pos(g.Edges[eid].From),
		})
	}
	for h.Len() > 0 {
		e := heap.Pop(h).(Event)
		s := states[e.Vehicle]
		switch e.Kind {
		case EventDepart:
			record(e)
			scheduleEdge(s, e.Time)
		case EventEdgeEnter:
			record(e)
			edge := g.Edges[e.Edge]
			// Sense tasks along this edge, ordered by position along it.
			if cfg.Tasks != nil {
				seg := geo.Segment{A: g.Pos(edge.From), B: g.Pos(edge.To)}
				type hit struct {
					tk task.ID
					t  float64
				}
				var hits []hit
				for _, tk := range cfg.Tasks.Tasks {
					if s.sensed[tk.ID] {
						continue
					}
					closest, tt := seg.ClosestPoint(tk.Pos)
					if closest.Dist(tk.Pos) <= cfg.SenseRadius {
						hits = append(hits, hit{tk.ID, tt})
					}
				}
				sort.Slice(hits, func(i, j int) bool {
					if hits[i].t != hits[j].t {
						return hits[i].t < hits[j].t
					}
					return hits[i].tk < hits[j].tk
				})
				for _, hh := range hits {
					s.sensed[hh.tk] = true
					at := e.Time + hh.t*edge.TravelTime()
					heap.Push(h, Event{
						Time: at, Kind: EventSense, Vehicle: e.Vehicle, Task: hh.tk,
						Pos: seg.A.Lerp(seg.B, hh.t),
					})
				}
			}
			s.report.Distance += edge.Length
			s.edgeIdx++
			scheduleEdge(s, e.Time+edge.TravelTime())
		case EventSense:
			record(e)
			s.report.Sensed = append(s.report.Sensed, e.Task)
			s.report.SenseTimes = append(s.report.SenseTimes, e.Time)
			res.Completions[e.Task]++
		case EventArrive:
			record(e)
			if s.finished {
				return nil, fmt.Errorf("sim: vehicle %d arrived twice", e.Vehicle)
			}
			s.finished = true
			s.report.ArriveTime = e.Time
			s.report.TravelTime = e.Time - s.report.DepartTime
			if e.Time > res.Makespan {
				res.Makespan = e.Time
			}
		}
	}
	// Emit reports in vehicle order.
	ids := make([]int, 0, len(states))
	for id := range states {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		s := states[id]
		if !s.finished {
			return nil, fmt.Errorf("sim: vehicle %d never arrived", id)
		}
		res.Reports = append(res.Reports, s.report)
	}
	return res, nil
}

// MeanTravelTime returns the mean realized travel time across vehicles.
func (r *Result) MeanTravelTime() float64 {
	if len(r.Reports) == 0 {
		return 0
	}
	var sum float64
	for _, rep := range r.Reports {
		sum += rep.TravelTime
	}
	return sum / float64(len(r.Reports))
}

// TasksSensed returns the number of distinct tasks sensed at least once.
func (r *Result) TasksSensed() int { return len(r.Completions) }

// RealizedReward returns the total realized reward under the shared reward
// function: Σ_k w_k(n_k) over sensed tasks, with n_k the realized
// completion counts.
func (r *Result) RealizedReward(tasks *task.Set) float64 {
	var total float64
	for id, n := range r.Completions {
		total += tasks.Get(id).Reward(n)
	}
	return total
}
