// Package wire defines the message vocabulary spoken between the platform
// (Algorithm 2) and the user agents (Algorithm 1), and two codecs for
// carrying it over byte streams (TCP): the hand-rolled binary codec
// (binary.go, the production transport encoding, allocation-free in steady
// state) and the original gob Codec, retained as the differential-testing
// oracle the binary format is proven against. A frame-level multiplexer
// (mux.go) carries many agent streams over one connection. The same
// messages flow over in-process channel transports in package distributed.
// See docs/WIRE.md for the frame layout and compatibility policy.
//
// The protocol is deliberately information-minimal, matching the paper's
// privacy argument: a user never learns other users' identities, routes, or
// decisions — only the participant counts n_k for tasks its own recommended
// routes cover, and the platform-computed costs d(r), b(r).
package wire

import (
	"encoding/gob"
	"fmt"
	"io"
)

// Kind discriminates message types.
type Kind int

// Message kinds, in rough protocol order.
const (
	KindInvalid Kind = iota
	// KindHello is sent by an agent when it connects (or reconnects after a
	// crash) to identify itself.
	KindHello
	// KindInit carries the recommended route set R_i with platform-computed
	// costs d(r), b(r) and the reward parameters of covered tasks
	// (Algorithm 1 lines 2 and 7; Algorithm 2 lines 1 and 4).
	KindInit
	// KindSlotInfo opens a decision slot: current n_k for the tasks the
	// user's routes cover (Algorithm 1 line 9).
	KindSlotInfo
	// KindRequest is the user's reply: whether it wants to update, the
	// proposed route, and the PUU metadata τ_i and B_i (Algorithm 1 line
	// 12; Algorithm 3 inputs).
	KindRequest
	// KindGrant tells a user it won the update opportunity (Algorithm 1
	// line 13).
	KindGrant
	// KindDecision reports the user's (initial or updated) route decision
	// (Algorithm 1 lines 4 and 15).
	KindDecision
	// KindTerminate ends the protocol: an equilibrium was reached
	// (Algorithm 2 line 12).
	KindTerminate
	// KindGossipDelta carries a batch of per-task participation-count
	// deltas between platform shards (package distributed/federation): the
	// net n_k changes a shard applied since its previous batch, stamped
	// with the sender's gossip epoch so receivers can drop duplicates and
	// detect gaps.
	KindGossipDelta
	// KindShardRequests carries one shard's full per-slot batch of agent
	// improvement requests to its federation peers (multi-node mode): every
	// shard broadcasts its own batch, then all shards deterministically
	// compute the identical global winner set from the merged batches.
	KindShardRequests
	// KindSnapshot is a full-state transfer of the replicated count store,
	// served to a peer that reconnects after a crash: consistent counts,
	// the sender's epoch vector, and the per-shard contribution ledger the
	// restarted shard rebuilds its replica (and catch-up deltas) from.
	KindSnapshot
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case KindHello:
		return "hello"
	case KindInit:
		return "init"
	case KindSlotInfo:
		return "slotinfo"
	case KindRequest:
		return "request"
	case KindGrant:
		return "grant"
	case KindDecision:
		return "decision"
	case KindTerminate:
		return "terminate"
	case KindGossipDelta:
		return "gossipdelta"
	case KindShardRequests:
		return "shardrequests"
	case KindSnapshot:
		return "snapshot"
	}
	return "invalid"
}

// RouteInfo is one recommended route as seen by a user: the covered task
// IDs and the platform-weighted costs d(r) = φ·h(r) and b(r) = θ·c(r).
// The raw detour distance and congestion level stay on the platform.
type RouteInfo struct {
	Tasks          []int
	DetourCost     float64
	CongestionCost float64
}

// TaskParam carries a task's public reward parameters (Eq. 1).
type TaskParam struct {
	A, Mu float64
}

// Hello identifies an agent.
type Hello struct {
	User int
	// Resume is set when the agent restarts mid-run and needs its state
	// re-sent.
	Resume bool
}

// Init carries the user's recommended routes and task parameters.
type Init struct {
	User   int
	Routes []RouteInfo
	Tasks  map[int]TaskParam
	// CurrentRoute is the route the platform has on record for this user;
	// -1 on first contact (the agent then chooses randomly per Algorithm 1
	// line 3 and replies with a Decision).
	CurrentRoute int
}

// SlotInfo opens a decision slot.
type SlotInfo struct {
	Slot   int
	Counts map[int]int // n_k for tasks covered by the user's routes
}

// Request is the user's per-slot reply.
type Request struct {
	Slot      int
	HasUpdate bool
	Route     int     // proposed route (valid when HasUpdate)
	Tau       float64 // τ_i = ΔP_i/α_i
	B         []int   // B_i: tasks touched by the move
}

// Grant awards the update opportunity for a slot.
type Grant struct {
	Slot int
}

// Decision reports a chosen route. Slot 0 is the initial decision.
type Decision struct {
	Slot  int
	Route int
}

// Terminate ends the run.
type Terminate struct {
	Slot int
}

// GossipDelta is one batched count-replication message between platform
// shards. Counts maps task ID to the net change in n_k the sending shard
// applied since its previous batch. Epoch is the sender's gossip epoch:
// it starts at 1 and increments by exactly one per batch, so a receiver
// drops re-deliveries (epoch ≤ last seen) and flags gaps (epoch jumps by
// more than one) instead of silently corrupting its replica. A batch may
// be empty — shards flush every round, moves or not, because the empty
// batch is what tells peers the sender's counts are quiescent.
type GossipDelta struct {
	Shard  int
	Epoch  int
	Counts map[int]int // task ID -> n_k delta
}

// ShardRequest is one user's pending improvement request as relayed
// between federation shards: the proposed route plus the PUU metadata
// (τ_i, B_i) the global selection policies need. It mirrors the agent-side
// Request but names the user explicitly, since the batch aggregates many.
type ShardRequest struct {
	User  int
	Route int
	Tau   float64
	B     []int
}

// ShardRequests is one shard's complete improvement-request batch for one
// decision slot, broadcast to every federation peer in multi-node mode.
// Requests are listed in ascending user order; the receiving shard merges
// the batches in shard order, so every shard derives the same global
// ordering — and therefore the same winner set — without a coordinator.
// Terminating is a farewell marker: the sender saw an empty global merge
// at Slot-1 and has terminated, so a peer still running at Slot knows the
// federation diverged (possible only inside a crash fault window) and can
// fail fast instead of waiting for a batch that will never come.
type ShardRequests struct {
	Shard       int
	Slot        int
	Terminating bool
	Reqs        []ShardRequest
}

// Snapshot transfers the full replicated count-store state to a shard that
// reconnects after a crash. Counts is the sender's consistent (flushed)
// per-task state; Epochs[q] is the sender's view of shard q's gossip epoch
// (its own flushed epoch at index Shard); Contrib[q] is shard q's
// cumulative per-task contribution, satisfying Counts = Σ_q Contrib[q].
// Round is the decision slot the sender is currently executing, which the
// restarted shard uses to rejoin the BSP round structure. The contribution
// ledger is what lets the restarted shard synthesize exact catch-up deltas
// for peers that missed its final pre-crash batches.
type Snapshot struct {
	Shard   int
	Round   int
	Epochs  []int
	Counts  []int
	Contrib [][]int
}

// Message is the single on-the-wire envelope. Exactly one payload field is
// non-nil, matching Kind.
type Message struct {
	Kind Kind
	// Seq is a per-sender sequence number used to drop duplicate
	// deliveries.
	Seq uint64
	// Epoch is the sender's incarnation number. An agent that crashes and
	// reconnects bumps its epoch so its restarted sequence numbers are not
	// mistaken for duplicates of the previous life. The platform stays at
	// epoch 0.
	Epoch uint32
	// From is the sending user ID, or -1 for the platform.
	From int

	// TraceID, SpanID, and TraceFlags carry distributed-tracing context
	// (internal/tracing) across process boundaries: the trace this message
	// belongs to, the sender's span (the remote parent), and bit 0 of
	// TraceFlags marking the trace as sampled. All-zero means "no trace
	// context"; the fields are plain integers so the wire package stays
	// dependency-free.
	TraceID    uint64
	SpanID     uint64
	TraceFlags uint8

	Hello         *Hello
	Init          *Init
	SlotInfo      *SlotInfo
	Request       *Request
	Grant         *Grant
	Decision      *Decision
	Terminate     *Terminate
	GossipDelta   *GossipDelta
	ShardRequests *ShardRequests
	Snapshot      *Snapshot
}

// Validate checks that exactly one payload is set and that it matches the
// kind. Rejecting extra payloads (not just a missing one) keeps the two
// codecs equivalent: the binary encoding carries only the payload named by
// Kind, so a message smuggling additional payloads would silently lose
// them on the wire.
func (m *Message) Validate() error {
	n := 0
	for _, set := range [...]bool{
		m.Hello != nil, m.Init != nil, m.SlotInfo != nil, m.Request != nil,
		m.Grant != nil, m.Decision != nil, m.Terminate != nil,
		m.GossipDelta != nil, m.ShardRequests != nil, m.Snapshot != nil,
	} {
		if set {
			n++
		}
	}
	var ok bool
	switch m.Kind {
	case KindHello:
		ok = m.Hello != nil
	case KindInit:
		ok = m.Init != nil
	case KindSlotInfo:
		ok = m.SlotInfo != nil
	case KindRequest:
		ok = m.Request != nil
	case KindGrant:
		ok = m.Grant != nil
	case KindDecision:
		ok = m.Decision != nil
	case KindTerminate:
		ok = m.Terminate != nil
	case KindGossipDelta:
		ok = m.GossipDelta != nil
	case KindShardRequests:
		ok = m.ShardRequests != nil
	case KindSnapshot:
		ok = m.Snapshot != nil
	}
	if !ok {
		return fmt.Errorf("wire: message kind %v with missing or mismatched payload", m.Kind)
	}
	if n != 1 {
		return fmt.Errorf("wire: message kind %v carries %d payloads, want exactly 1", m.Kind, n)
	}
	return nil
}

// Codec encodes and decodes Messages over a byte stream using encoding/gob.
type Codec struct {
	enc *gob.Encoder
	dec *gob.Decoder
}

// NewCodec wraps a stream. For a bidirectional connection pass the same
// net.Conn as both reader and writer.
func NewCodec(r io.Reader, w io.Writer) *Codec {
	return &Codec{enc: gob.NewEncoder(w), dec: gob.NewDecoder(r)}
}

// Encode writes one message.
func (c *Codec) Encode(m *Message) error {
	if err := m.Validate(); err != nil {
		return err
	}
	return c.enc.Encode(m)
}

// Decode reads one message. Malformed input — truncated, corrupted, or
// adversarial byte streams — surfaces as an error, never a panic: gob is
// not fully hardened against hostile input, so decoding runs behind a
// recover barrier.
func (c *Codec) Decode() (m *Message, err error) {
	defer func() {
		if r := recover(); r != nil {
			m, err = nil, fmt.Errorf("wire: decode panic on malformed stream: %v", r)
		}
	}()
	var msg Message
	if err := c.dec.Decode(&msg); err != nil {
		return nil, fmt.Errorf("wire: decode: %w", err)
	}
	if err := msg.Validate(); err != nil {
		return nil, err
	}
	return &msg, nil
}
