package wire

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// corpusMessages covers every message kind with representative payloads;
// the fuzz targets and the truncation/corruption tests all start from it.
func corpusMessages() []*Message {
	return []*Message{
		{Kind: KindHello, Seq: 1, From: 2, Hello: &Hello{User: 2, Resume: true}},
		{Kind: KindInit, Seq: 2, Epoch: 1, From: -1, Init: &Init{
			User: 2,
			Routes: []RouteInfo{
				{Tasks: []int{0, 4}, DetourCost: 1.25, CongestionCost: 0.5},
				{Tasks: nil, DetourCost: 0, CongestionCost: 3},
			},
			Tasks:        map[int]TaskParam{0: {A: 11, Mu: 0.2}, 4: {A: 19.5, Mu: 0.8}},
			CurrentRoute: -1,
		}},
		{Kind: KindSlotInfo, Seq: 3, From: -1,
			TraceID: 0xdeadbeefcafef00d, SpanID: 0x1234, TraceFlags: 1,
			SlotInfo: &SlotInfo{Slot: 5, Counts: map[int]int{0: 3, 4: 1}}},
		{Kind: KindRequest, Seq: 4, Epoch: 2, From: 2,
			TraceID: 0xdeadbeefcafef00d, SpanID: 0x1235, TraceFlags: 1,
			Request: &Request{Slot: 5, HasUpdate: true, Route: 1, Tau: 0.25, B: []int{0, 4}}},
		{Kind: KindGrant, Seq: 5, From: -1, Grant: &Grant{Slot: 5}},
		{Kind: KindDecision, Seq: 6, From: 2, Decision: &Decision{Slot: 5, Route: 1}},
		{Kind: KindTerminate, Seq: 7, From: -1, Terminate: &Terminate{Slot: 6}},
		{Kind: KindGossipDelta, Seq: 8, Epoch: 1, From: -1,
			GossipDelta: &GossipDelta{Shard: 1, Epoch: 3, Counts: map[int]int{0: 1, 4: -1}}},
		{Kind: KindShardRequests, Seq: 9, Epoch: 1, From: -1,
			ShardRequests: &ShardRequests{Shard: 1, Slot: 5, Reqs: []ShardRequest{
				{User: 2, Route: 1, Tau: 0.5, B: []int{0, 4}},
			}}},
		{Kind: KindSnapshot, Seq: 10, From: -1,
			Snapshot: &Snapshot{Shard: 0, Round: 5, Epochs: []int{6, 5},
				Counts: []int{1, 0, 2}, Contrib: [][]int{{1, 0, 0}, {0, 0, 2}}}},
	}
}

func encodeAll(t testing.TB, msgs []*Message) []byte {
	t.Helper()
	var buf bytes.Buffer
	c := NewCodec(&buf, &buf)
	for _, m := range msgs {
		if err := c.Encode(m); err != nil {
			t.Fatal(err)
		}
	}
	return buf.Bytes()
}

// FuzzCodecDecode feeds arbitrary byte streams to Decode. Whatever the
// bytes, Decode must return a message or an error — never panic — and any
// message it accepts must pass Validate and re-encode cleanly.
func FuzzCodecDecode(f *testing.F) {
	for _, m := range corpusMessages() {
		f.Add(encodeAll(f, []*Message{m}))
	}
	full := encodeAll(f, corpusMessages())
	f.Add(full)
	// Truncations and single-byte corruptions of a valid stream are the
	// interesting neighborhoods; seed a few so even the seed-corpus-only CI
	// pass exercises them.
	f.Add(full[:len(full)/2])
	f.Add(full[:1])
	f.Add([]byte{})
	if len(full) > 10 {
		corrupt := append([]byte(nil), full...)
		corrupt[10] ^= 0xff
		f.Add(corrupt)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		c := NewCodec(bytes.NewReader(data), nil)
		for i := 0; i < 64; i++ { // bound work on streams with many messages
			m, err := c.Decode()
			if err != nil {
				return // any error is fine; panics are caught by the runtime
			}
			if err := m.Validate(); err != nil {
				t.Fatalf("Decode returned invalid message: %v", err)
			}
			var out bytes.Buffer
			if err := NewCodec(nil, &out).Encode(m); err != nil {
				t.Fatalf("accepted message failed to re-encode: %v", err)
			}
		}
	})
}

// FuzzCodecRoundTrip fuzzes structured Request fields — including the
// trace-context envelope fields — through a full encode/decode cycle:
// whatever values the fuzzer picks must survive the wire exactly.
func FuzzCodecRoundTrip(f *testing.F) {
	f.Add(5, true, 1, 0.25, uint64(4), uint32(0), uint64(0), uint64(0), uint8(0))
	f.Add(0, false, -3, -1.5, uint64(0), uint32(7), uint64(0xdeadbeefcafef00d), uint64(77), uint8(1))
	f.Add(9, true, 2, 0.5, uint64(8), uint32(1), ^uint64(0), ^uint64(0), uint8(0xff))
	f.Fuzz(func(t *testing.T, slot int, has bool, route int, tau float64, seq uint64, epoch uint32, trace, span uint64, flags uint8) {
		in := &Message{
			Kind: KindRequest, Seq: seq, Epoch: epoch, From: 1,
			TraceID: trace, SpanID: span, TraceFlags: flags,
			Request: &Request{Slot: slot, HasUpdate: has, Route: route, Tau: tau, B: []int{slot, route}},
		}
		var buf bytes.Buffer
		c := NewCodec(&buf, &buf)
		if err := c.Encode(in); err != nil {
			t.Fatal(err)
		}
		out, err := c.Decode()
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(in, out) {
			t.Fatalf("round trip changed message:\n in %+v\nout %+v", in, out)
		}
	})
}

// goldenFrames loads the committed golden corpus; the binary fuzz targets
// seed from it so mutation starts at real frames of every kind.
func goldenFrames(f *testing.F) [][]byte {
	f.Helper()
	var frames [][]byte
	for _, tc := range goldenCases() {
		data, err := os.ReadFile(filepath.Join("testdata", tc.name+".bin"))
		if err != nil {
			f.Fatalf("golden corpus missing (run -update-golden): %v", err)
		}
		frames = append(frames, data)
	}
	return frames
}

// FuzzBinaryDecode feeds arbitrary byte streams to the binary decoder.
// Whatever the bytes — truncations, bit-flips, oversized length prefixes —
// Decode must return a message or an error, never panic, and any message it
// accepts must be valid and a canonical fixpoint: re-encoding the decode of
// its own encoding reproduces the bytes exactly.
func FuzzBinaryDecode(f *testing.F) {
	frames := goldenFrames(f)
	var full []byte
	for _, fr := range frames {
		f.Add(fr)
		full = append(full, fr...)
	}
	f.Add(full)
	f.Add(full[:len(full)/2])
	f.Add(full[:3])
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff}) // hostile length prefix
	corrupt := append([]byte(nil), full...)
	corrupt[10] ^= 0xff
	f.Add(corrupt)
	f.Fuzz(func(t *testing.T, data []byte) {
		c := NewBinaryCodec(bytes.NewReader(data), nil)
		for i := 0; i < 64; i++ { // bound work on streams with many messages
			m, err := c.Decode()
			if err != nil {
				return
			}
			if err := m.Validate(); err != nil {
				t.Fatalf("Decode returned invalid message: %v", err)
			}
			e1, err := AppendFrame(nil, m)
			if err != nil {
				t.Fatalf("accepted message failed to re-encode: %v", err)
			}
			m2, err := NewBinaryCodec(bytes.NewReader(e1), nil).Decode()
			if err != nil {
				t.Fatalf("re-encoded frame failed to decode: %v", err)
			}
			e2, err := AppendFrame(nil, m2)
			if err != nil {
				t.Fatalf("second re-encode failed: %v", err)
			}
			if !bytes.Equal(e1, e2) {
				t.Fatalf("encoding not canonical:\n e1 % x\n e2 % x", e1, e2)
			}
		}
	})
}

// muxStream prefixes each frame with its channel ID and the data frame
// type, building a valid mux byte stream.
func muxStream(ids []uint64, frames [][]byte) []byte {
	var out []byte
	for i, fr := range frames {
		out = binary.AppendUvarint(out, ids[i%len(ids)])
		out = append(out, muxFrameData)
		out = append(out, fr...)
	}
	return out
}

// FuzzMuxFrames fuzzes the mux demux loop: interleaved channel frames,
// close frames, truncations, bit-flips, and oversized prefixes must all
// surface as errors or valid frames — never a panic — and every accepted
// data frame must carry a valid, re-encodable message.
func FuzzMuxFrames(f *testing.F) {
	frames := goldenFrames(f)
	f.Add(muxStream([]uint64{0}, frames))
	f.Add(muxStream([]uint64{0, 1, 2}, frames)) // interleaved channels
	withClose := muxStream([]uint64{7}, frames[:2])
	withClose = binary.AppendUvarint(withClose, 7)
	withClose = append(withClose, muxFrameClose)
	f.Add(withClose)
	full := muxStream([]uint64{0, 1}, frames)
	f.Add(full[:len(full)/2])
	f.Add([]byte{})
	f.Add([]byte{0x00, muxFrameData, 0xff, 0xff, 0xff, 0xff}) // hostile length
	f.Add([]byte{0x00, 0x7f})                                 // unknown frame type
	corrupt := append([]byte(nil), full...)
	corrupt[len(corrupt)/3] ^= 0x80
	f.Add(corrupt)
	f.Fuzz(func(t *testing.T, data []byte) {
		br := bufio.NewReader(bytes.NewReader(data))
		var buf []byte
		for i := 0; i < 256; i++ {
			id, typ, msg, nbuf, err := readMuxFrame(br, buf, 1<<20)
			buf = nbuf
			if err != nil {
				return
			}
			if id > 1<<20 {
				t.Fatalf("accepted out-of-range channel id %d", id)
			}
			if typ == muxFrameData {
				if err := msg.Validate(); err != nil {
					t.Fatalf("accepted invalid message: %v", err)
				}
				if _, err := AppendFrame(nil, msg); err != nil {
					t.Fatalf("accepted message failed to re-encode: %v", err)
				}
			}
		}
	})
}

// TestDecodeTruncated cuts a valid encoded stream at every byte boundary:
// each prefix must produce a clean error (or decode a valid prefix of the
// stream), never a panic.
func TestDecodeTruncated(t *testing.T) {
	full := encodeAll(t, corpusMessages())
	for cut := 0; cut < len(full); cut++ {
		c := NewCodec(bytes.NewReader(full[:cut]), nil)
		for {
			m, err := c.Decode()
			if err != nil {
				break
			}
			if err := m.Validate(); err != nil {
				t.Fatalf("cut %d: decoded invalid message: %v", cut, err)
			}
		}
	}
}

// TestDecodeCorrupted flips each byte of a valid stream in turn; Decode
// must either error out or keep producing valid messages.
func TestDecodeCorrupted(t *testing.T) {
	full := encodeAll(t, corpusMessages())
	for i := range full {
		data := append([]byte(nil), full...)
		data[i] ^= 0x5a
		c := NewCodec(bytes.NewReader(data), nil)
		for j := 0; j < 64; j++ {
			m, err := c.Decode()
			if err != nil {
				break
			}
			if err := m.Validate(); err != nil {
				t.Fatalf("byte %d corrupted: decoded invalid message: %v", i, err)
			}
		}
	}
}
