package wire

// This file implements frame-level connection multiplexing: many agent
// message streams share one byte stream (one TCP connection), so a platform
// can hold thousands of agents without a socket and goroutine pair each.
//
// Mux frame layout (see docs/WIRE.md):
//
//	uvarint channel ID | 1-byte frame type | [binary message frame]
//
// Frame type 0 (data) is followed by one length-prefixed binary message
// frame exactly as NewBinaryCodec produces; frame type 1 (close) has no
// body and tears down the named channel on the receiving side.
//
// Flow control is sender-side: every channel owns a bounded queue of
// pre-encoded frames, Send blocks only when its own channel's queue is
// full, and a single writer goroutine drains the queues in round-robin
// order, so one flooding channel cannot starve its siblings of the shared
// connection. On the receive side the demux loop never blocks on a slow
// consumer: frames are parked in the target channel's receive queue, and a
// channel whose consumer stalls past RecvHighWater fails alone with
// ErrRecvOverflow while its siblings keep flowing.

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sync"
)

// Mux frame types.
const (
	muxFrameData  = 0x00
	muxFrameClose = 0x01
)

// Mux session errors.
var (
	// ErrMuxClosed reports an operation on a closed mux session.
	ErrMuxClosed = errors.New("wire: mux closed")
	// ErrChannelClosed reports an operation on a closed mux channel.
	ErrChannelClosed = errors.New("wire: mux channel closed")
	// ErrRecvOverflow fails a channel whose consumer stalled long enough
	// for RecvHighWater undelivered messages to pile up. Only the stalled
	// channel fails; its siblings keep flowing.
	ErrRecvOverflow = errors.New("wire: mux channel receive queue overflow (stalled consumer)")
)

// MuxOptions tunes a mux session. The zero value selects the defaults.
type MuxOptions struct {
	// SendQueue is the per-channel send-queue capacity in frames; a Send on
	// a full channel blocks until the writer drains it (backpressure).
	// Default 16.
	SendQueue int
	// RecvHighWater is the per-channel receive-queue cap. The protocol
	// bounds per-channel in-flight traffic to a handful of messages, so
	// hitting this means the consumer is stuck (or the peer is flooding);
	// the channel fails with ErrRecvOverflow rather than blocking siblings.
	// Default 4096.
	RecvHighWater int
	// MaxChannelID bounds channel IDs accepted from the peer; hostile IDs
	// above it kill the session. Default 1<<20.
	MaxChannelID uint32
	// MaxChannels bounds the number of distinct channels a session holds.
	// Default 1<<16.
	MaxChannels int
}

func (o MuxOptions) withDefaults() MuxOptions {
	if o.SendQueue <= 0 {
		o.SendQueue = 16
	}
	if o.RecvHighWater <= 0 {
		o.RecvHighWater = 4096
	}
	if o.MaxChannelID == 0 {
		o.MaxChannelID = 1 << 20
	}
	if o.MaxChannels <= 0 {
		o.MaxChannels = 1 << 16
	}
	return o
}

// Mux multiplexes many message channels over one byte stream. Both ends of
// a connection run a Mux; a channel is identified by the same ID on both
// sides (this protocol uses the user ID). All channel operations are safe
// for concurrent use.
type Mux struct {
	rw   io.ReadWriteCloser
	opts MuxOptions

	mu      sync.Mutex
	wcond   sync.Cond // wakes the writer when a queue becomes non-empty
	acond   sync.Cond // wakes Accept when a new channel arrives
	dcond   sync.Cond // wakes Drain when the writer goes idle
	chans   map[uint32]*MuxChannel
	ring    []*MuxChannel // creation order; the writer's round-robin ring
	rr      int           // next ring slot the writer inspects
	accept  []*MuxChannel
	writing bool // a popped frame is being written outside the lock
	err     error
}

// NewMux starts a mux session over rw and its reader/writer goroutines.
// Close the mux (or the underlying stream) to stop them.
func NewMux(rw io.ReadWriteCloser, opts MuxOptions) *Mux {
	m := &Mux{rw: rw, opts: opts.withDefaults(), chans: map[uint32]*MuxChannel{}}
	m.wcond.L = &m.mu
	m.acond.L = &m.mu
	m.dcond.L = &m.mu
	go m.writeLoop()
	go m.readLoop()
	return m
}

// MuxChannel is one multiplexed message stream. It satisfies the same
// Send/Recv/Close contract as the Conn transports in package distributed,
// so the retry, dedup, fault-injection, and tracing decorators compose over
// it unchanged.
type MuxChannel struct {
	mux     *Mux
	id      uint32
	claimed bool // handed out via Channel or Accept

	// All fields below are guarded by mux.mu.
	sendq       [][]byte
	sendWait    sync.Cond
	recvWait    sync.Cond
	rq          []*Message
	localClosed bool
	peerClosed  bool
	failed      error
}

// channelLocked returns the channel with the given ID, creating it if new.
func (m *Mux) channelLocked(id uint32) (*MuxChannel, error) {
	if c, ok := m.chans[id]; ok {
		return c, nil
	}
	if len(m.chans) >= m.opts.MaxChannels {
		return nil, fmt.Errorf("wire: mux channel limit %d exceeded", m.opts.MaxChannels)
	}
	c := &MuxChannel{mux: m, id: id}
	c.sendWait.L = &m.mu
	c.recvWait.L = &m.mu
	m.chans[id] = c
	m.ring = append(m.ring, c)
	return c, nil
}

// Channel returns the channel with the given ID, creating it if necessary.
// Both sides of a connection address a stream by the same ID, so no
// handshake is needed: frames sent here surface on the peer's channel with
// the same ID.
func (m *Mux) Channel(id uint32) (*MuxChannel, error) {
	if id > m.opts.MaxChannelID {
		return nil, fmt.Errorf("wire: mux channel id %d exceeds limit %d", id, m.opts.MaxChannelID)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.err != nil {
		return nil, m.err
	}
	c, err := m.channelLocked(id)
	if err != nil {
		return nil, err
	}
	c.claimed = true
	return c, nil
}

// Accept blocks until the peer opens a channel this side has not claimed
// yet (its first frame arrives), and returns it. It fails once the session
// dies.
func (m *Mux) Accept() (*MuxChannel, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for {
		for len(m.accept) > 0 {
			c := m.accept[0]
			m.accept = m.accept[1:]
			if c.claimed {
				continue // claimed via Channel before Accept got to it
			}
			c.claimed = true
			return c, nil
		}
		if m.err != nil {
			return nil, m.err
		}
		m.acond.Wait()
	}
}

// Err returns the session's terminal error, or nil while it is healthy.
func (m *Mux) Err() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.err
}

// Close tears down the session: all channels fail, both loops stop, and the
// underlying stream is closed. Queued outgoing frames are dropped; call
// Drain first for a graceful shutdown.
func (m *Mux) Close() error {
	m.fail(ErrMuxClosed)
	return nil
}

// Drain blocks until every queued outgoing frame has been handed to the
// underlying stream, so a Close immediately after cannot drop in-flight
// messages. It returns early with the session error if the session dies.
func (m *Mux) Drain() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	for {
		if m.err != nil {
			return m.err
		}
		pending := m.writing
		for _, c := range m.ring {
			if len(c.sendq) > 0 {
				pending = true
				break
			}
		}
		if !pending {
			return nil
		}
		m.dcond.Wait()
	}
}

// fail records the session's terminal error (first one wins), wakes every
// waiter, and closes the underlying stream to unblock parked I/O.
func (m *Mux) fail(err error) {
	m.mu.Lock()
	if m.err == nil {
		m.err = err
	}
	for _, c := range m.ring {
		c.recvWait.Broadcast()
		c.sendWait.Broadcast()
	}
	m.wcond.Broadcast()
	m.acond.Broadcast()
	m.mu.Unlock()
	m.rw.Close()
}

// nextLocked picks the next channel with a queued frame, round-robin from
// just past the previously served channel, so a busy channel cannot starve
// its siblings.
func (m *Mux) nextLocked() *MuxChannel {
	n := len(m.ring)
	for i := 0; i < n; i++ {
		c := m.ring[(m.rr+i)%n]
		if len(c.sendq) > 0 {
			m.rr = (m.rr + i + 1) % n
			return c
		}
	}
	return nil
}

// writeLoop is the single writer: it drains per-channel queues fairly and
// serializes frames onto the shared stream.
func (m *Mux) writeLoop() {
	for {
		m.mu.Lock()
		var c *MuxChannel
		for {
			if m.err != nil {
				m.mu.Unlock()
				return
			}
			if c = m.nextLocked(); c != nil {
				break
			}
			m.wcond.Wait()
		}
		frame := c.sendq[0]
		copy(c.sendq, c.sendq[1:])
		c.sendq[len(c.sendq)-1] = nil
		c.sendq = c.sendq[:len(c.sendq)-1]
		c.sendWait.Signal()
		m.writing = true
		m.mu.Unlock()
		_, err := m.rw.Write(frame)
		m.mu.Lock()
		m.writing = false
		m.dcond.Broadcast()
		m.mu.Unlock()
		if err != nil {
			m.fail(fmt.Errorf("wire: mux write: %w", err))
			return
		}
	}
}

// readLoop is the single demux reader: it parses frames off the shared
// stream and parks them in the target channel's receive queue. It never
// blocks on a slow consumer (see MuxOptions.RecvHighWater), so one stalled
// channel cannot head-of-line-block its siblings.
func (m *Mux) readLoop() {
	br := bufio.NewReader(m.rw)
	var buf []byte
	for {
		id, typ, msg, nbuf, err := readMuxFrame(br, buf, m.opts.MaxChannelID)
		buf = nbuf
		if err != nil {
			if errors.Is(err, io.EOF) {
				err = fmt.Errorf("wire: mux connection closed: %w", err)
			}
			m.fail(err)
			return
		}
		m.mu.Lock()
		c, cerr := m.channelLocked(id)
		if cerr != nil {
			m.mu.Unlock()
			m.fail(cerr)
			return
		}
		if !c.claimed {
			m.accept = append(m.accept, c)
			m.acond.Broadcast()
		}
		switch typ {
		case muxFrameClose:
			c.peerClosed = true
			c.recvWait.Broadcast()
			c.sendWait.Broadcast()
		case muxFrameData:
			switch {
			case c.failed != nil || c.localClosed:
				// Channel already dead on this side; drop.
			case len(c.rq) >= m.opts.RecvHighWater:
				c.failed = ErrRecvOverflow
				c.recvWait.Broadcast()
				c.sendWait.Broadcast()
			default:
				c.rq = append(c.rq, msg)
				c.recvWait.Signal()
			}
		}
		m.mu.Unlock()
	}
}

// readMuxFrame reads one mux frame: channel ID, frame type, and (for data
// frames) a fully parsed message in fresh storage. buf is the caller's
// reusable frame scratch, returned possibly grown. Malformed input of any
// shape — truncation, bad varints, oversized lengths, unknown frame types,
// corrupt message frames — returns an error, never panics.
func readMuxFrame(br *bufio.Reader, buf []byte, maxID uint32) (uint32, byte, *Message, []byte, error) {
	id, err := binary.ReadUvarint(br)
	if err != nil {
		return 0, 0, nil, buf, err
	}
	if id > uint64(maxID) {
		return 0, 0, nil, buf, fmt.Errorf("wire: mux channel id %d exceeds limit %d", id, maxID)
	}
	typ, err := br.ReadByte()
	if err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return 0, 0, nil, buf, err
	}
	switch typ {
	case muxFrameClose:
		return uint32(id), typ, nil, buf, nil
	case muxFrameData:
		var lenb [4]byte
		if _, err := io.ReadFull(br, lenb[:]); err != nil {
			return 0, 0, nil, buf, fmt.Errorf("wire: mux frame length: %w", err)
		}
		n := binary.LittleEndian.Uint32(lenb[:])
		if n < binaryHeaderLen {
			return 0, 0, nil, buf, fmt.Errorf("wire: mux frame: %w (%d bytes)", errShortFrame, n)
		}
		if n > MaxFrameLen {
			return 0, 0, nil, buf, fmt.Errorf("wire: mux frame: %w (%d bytes)", ErrFrameTooLarge, n)
		}
		if cap(buf) < int(n) {
			buf = make([]byte, n)
		}
		frame := buf[:n]
		if _, err := io.ReadFull(br, frame); err != nil {
			return 0, 0, nil, buf, fmt.Errorf("wire: mux frame body: %w", err)
		}
		msg := new(Message)
		if err := parseFrame(frame, msg); err != nil {
			return 0, 0, nil, buf, fmt.Errorf("wire: mux decode: %w", err)
		}
		if err := msg.Validate(); err != nil {
			return 0, 0, nil, buf, err
		}
		return uint32(id), typ, msg, buf, nil
	default:
		return 0, 0, nil, buf, fmt.Errorf("wire: unknown mux frame type %#x", typ)
	}
}

// ID returns the channel's identifier.
func (c *MuxChannel) ID() uint32 { return c.id }

// Send encodes msg and enqueues it on this channel's send queue, blocking
// while the queue is at capacity. Backpressure is per-channel: a Send
// parked here never stops sibling channels from draining.
func (c *MuxChannel) Send(msg *Message) error {
	if err := msg.Validate(); err != nil {
		return err
	}
	frame := binary.AppendUvarint(nil, uint64(c.id))
	frame = append(frame, muxFrameData)
	frame, _, err := appendFrame(frame, msg, nil)
	if err != nil {
		return err
	}
	m := c.mux
	m.mu.Lock()
	defer m.mu.Unlock()
	for {
		if m.err != nil {
			return m.err
		}
		if c.failed != nil {
			return c.failed
		}
		if c.localClosed || c.peerClosed {
			return ErrChannelClosed
		}
		if len(c.sendq) < m.opts.SendQueue {
			break
		}
		c.sendWait.Wait()
	}
	c.sendq = append(c.sendq, frame)
	m.wcond.Signal()
	return nil
}

// Recv returns the next message delivered to this channel. Messages already
// queued are drained before a peer close surfaces as an error.
func (c *MuxChannel) Recv() (*Message, error) {
	m := c.mux
	m.mu.Lock()
	defer m.mu.Unlock()
	for {
		if len(c.rq) > 0 {
			msg := c.rq[0]
			copy(c.rq, c.rq[1:])
			c.rq[len(c.rq)-1] = nil
			c.rq = c.rq[:len(c.rq)-1]
			return msg, nil
		}
		if c.failed != nil {
			return nil, c.failed
		}
		if m.err != nil {
			return nil, m.err
		}
		if c.peerClosed {
			return nil, fmt.Errorf("wire: mux channel %d closed by peer", c.id)
		}
		if c.localClosed {
			return nil, ErrChannelClosed
		}
		c.recvWait.Wait()
	}
}

// Close closes this channel only: pending outgoing frames still drain,
// followed by a close frame telling the peer, and local waiters wake with
// an error. The mux session and sibling channels are unaffected.
func (c *MuxChannel) Close() error {
	m := c.mux
	m.mu.Lock()
	defer m.mu.Unlock()
	if c.localClosed {
		return nil
	}
	c.localClosed = true
	if m.err == nil {
		frame := binary.AppendUvarint(nil, uint64(c.id))
		frame = append(frame, muxFrameClose)
		// Control frames bypass the queue cap so Close never blocks.
		c.sendq = append(c.sendq, frame)
		m.wcond.Signal()
	}
	c.recvWait.Broadcast()
	c.sendWait.Broadcast()
	return nil
}
