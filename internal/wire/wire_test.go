package wire

import (
	"bytes"
	"reflect"
	"testing"
)

func TestKindString(t *testing.T) {
	kinds := []Kind{KindHello, KindInit, KindSlotInfo, KindRequest, KindGrant, KindDecision, KindTerminate}
	names := []string{"hello", "init", "slotinfo", "request", "grant", "decision", "terminate"}
	for i, k := range kinds {
		if k.String() != names[i] {
			t.Errorf("Kind %d String = %q, want %q", k, k.String(), names[i])
		}
	}
	if KindInvalid.String() != "invalid" || Kind(99).String() != "invalid" {
		t.Error("invalid kind string wrong")
	}
}

func TestValidate(t *testing.T) {
	good := &Message{Kind: KindHello, Hello: &Hello{User: 3}}
	if err := good.Validate(); err != nil {
		t.Errorf("valid message rejected: %v", err)
	}
	bad := &Message{Kind: KindHello, Init: &Init{}}
	if err := bad.Validate(); err == nil {
		t.Error("mismatched payload accepted")
	}
	empty := &Message{Kind: KindGrant}
	if err := empty.Validate(); err == nil {
		t.Error("missing payload accepted")
	}
	if err := (&Message{Kind: KindInvalid}).Validate(); err == nil {
		t.Error("invalid kind accepted")
	}
}

func roundTrip(t *testing.T, m *Message) *Message {
	t.Helper()
	var buf bytes.Buffer
	c := NewCodec(&buf, &buf)
	if err := c.Encode(m); err != nil {
		t.Fatal(err)
	}
	out, err := c.Decode()
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func TestRoundTripAllKinds(t *testing.T) {
	msgs := []*Message{
		{Kind: KindHello, Seq: 1, From: 4, Hello: &Hello{User: 4, Resume: true}},
		{Kind: KindInit, Seq: 2, From: -1, Init: &Init{
			User: 4,
			Routes: []RouteInfo{
				{Tasks: []int{1, 3}, DetourCost: 2.5, CongestionCost: 0.75},
				{Tasks: nil, DetourCost: 0, CongestionCost: 1},
			},
			Tasks:        map[int]TaskParam{1: {A: 12, Mu: 0.3}, 3: {A: 15, Mu: 0.9}},
			CurrentRoute: -1,
		}},
		{Kind: KindSlotInfo, Seq: 3, From: -1, SlotInfo: &SlotInfo{Slot: 7, Counts: map[int]int{1: 2, 3: 1}}},
		{Kind: KindRequest, Seq: 4, From: 4, Request: &Request{Slot: 7, HasUpdate: true, Route: 1, Tau: 0.5, B: []int{1, 3}}},
		{Kind: KindGrant, Seq: 5, From: -1, Grant: &Grant{Slot: 7}},
		{Kind: KindDecision, Seq: 6, From: 4, Decision: &Decision{Slot: 7, Route: 1}},
		{Kind: KindTerminate, Seq: 7, From: -1, Terminate: &Terminate{Slot: 9}},
	}
	for _, m := range msgs {
		got := roundTrip(t, m)
		if !reflect.DeepEqual(m, got) {
			t.Errorf("round trip of %v:\n got %+v\nwant %+v", m.Kind, got, m)
		}
	}
}

func TestEncodeRejectsInvalid(t *testing.T) {
	var buf bytes.Buffer
	c := NewCodec(&buf, &buf)
	if err := c.Encode(&Message{Kind: KindGrant}); err == nil {
		t.Error("Encode accepted invalid message")
	}
	if buf.Len() != 0 {
		t.Error("invalid message wrote bytes")
	}
}

func TestDecodeEOF(t *testing.T) {
	var buf bytes.Buffer
	c := NewCodec(&buf, &buf)
	if _, err := c.Decode(); err == nil {
		t.Error("Decode on empty stream succeeded")
	}
}

func TestStreamedSequence(t *testing.T) {
	var buf bytes.Buffer
	enc := NewCodec(&buf, &buf)
	for i := 0; i < 10; i++ {
		m := &Message{Kind: KindGrant, Seq: uint64(i), From: -1, Grant: &Grant{Slot: i}}
		if err := enc.Encode(m); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 10; i++ {
		m, err := enc.Decode()
		if err != nil {
			t.Fatal(err)
		}
		if m.Grant.Slot != i || m.Seq != uint64(i) {
			t.Fatalf("message %d decoded as %+v", i, m)
		}
	}
}
