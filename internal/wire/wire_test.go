package wire

import (
	"bytes"
	"reflect"
	"testing"
)

func TestKindString(t *testing.T) {
	cases := []struct {
		k    Kind
		want string
	}{
		{KindInvalid, "invalid"},
		{KindHello, "hello"},
		{KindInit, "init"},
		{KindSlotInfo, "slotinfo"},
		{KindRequest, "request"},
		{KindGrant, "grant"},
		{KindDecision, "decision"},
		{KindTerminate, "terminate"},
		{KindGossipDelta, "gossipdelta"},
		{KindShardRequests, "shardrequests"},
		{KindSnapshot, "snapshot"},
		// Out-of-range values, both directions.
		{Kind(-1), "invalid"},
		{Kind(11), "invalid"},
		{Kind(99), "invalid"},
	}
	for _, tc := range cases {
		if got := tc.k.String(); got != tc.want {
			t.Errorf("Kind(%d).String() = %q, want %q", int(tc.k), got, tc.want)
		}
	}
}

// payloadSetters covers every payload field; attaching setter i to a
// message makes exactly that payload non-nil.
var payloadSetters = []struct {
	kind Kind
	set  func(*Message)
}{
	{KindHello, func(m *Message) { m.Hello = &Hello{} }},
	{KindInit, func(m *Message) { m.Init = &Init{} }},
	{KindSlotInfo, func(m *Message) { m.SlotInfo = &SlotInfo{} }},
	{KindRequest, func(m *Message) { m.Request = &Request{} }},
	{KindGrant, func(m *Message) { m.Grant = &Grant{} }},
	{KindDecision, func(m *Message) { m.Decision = &Decision{} }},
	{KindTerminate, func(m *Message) { m.Terminate = &Terminate{} }},
	{KindGossipDelta, func(m *Message) { m.GossipDelta = &GossipDelta{} }},
	{KindShardRequests, func(m *Message) { m.ShardRequests = &ShardRequests{} }},
	{KindSnapshot, func(m *Message) { m.Snapshot = &Snapshot{} }},
}

// TestValidate exhaustively crosses every kind (including KindInvalid and
// out-of-range kinds) with every single-payload combination: a message is
// valid exactly when it carries the one payload its kind names.
func TestValidate(t *testing.T) {
	kinds := []Kind{KindInvalid, KindHello, KindInit, KindSlotInfo, KindRequest,
		KindGrant, KindDecision, KindTerminate, KindGossipDelta,
		KindShardRequests, KindSnapshot, Kind(-1), Kind(99)}
	for _, k := range kinds {
		// No payload at all: always invalid.
		if err := (&Message{Kind: k}).Validate(); err == nil {
			t.Errorf("kind %v with no payload accepted", k)
		}
		for _, p := range payloadSetters {
			m := &Message{Kind: k}
			p.set(m)
			err := m.Validate()
			if k == p.kind {
				if err != nil {
					t.Errorf("kind %v with matching payload rejected: %v", k, err)
				}
			} else if err == nil {
				t.Errorf("kind %v with %v payload accepted", k, p.kind)
			}
		}
	}
	// Exactly-one-payload rule: a matching payload plus any extra one is
	// invalid (the wire carries only the payload named by Kind, so extras
	// would be silently lost).
	for _, p := range payloadSetters {
		for _, extra := range payloadSetters {
			if extra.kind == p.kind {
				continue
			}
			m := &Message{Kind: p.kind}
			p.set(m)
			extra.set(m)
			if err := m.Validate(); err == nil {
				t.Errorf("kind %v carrying extra %v payload accepted", p.kind, extra.kind)
			}
		}
	}
}

func roundTrip(t *testing.T, m *Message) *Message {
	t.Helper()
	var buf bytes.Buffer
	c := NewCodec(&buf, &buf)
	if err := c.Encode(m); err != nil {
		t.Fatal(err)
	}
	out, err := c.Decode()
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func TestRoundTripAllKinds(t *testing.T) {
	msgs := []*Message{
		{Kind: KindHello, Seq: 1, From: 4, Hello: &Hello{User: 4, Resume: true}},
		{Kind: KindInit, Seq: 2, From: -1, Init: &Init{
			User: 4,
			Routes: []RouteInfo{
				{Tasks: []int{1, 3}, DetourCost: 2.5, CongestionCost: 0.75},
				{Tasks: nil, DetourCost: 0, CongestionCost: 1},
			},
			Tasks:        map[int]TaskParam{1: {A: 12, Mu: 0.3}, 3: {A: 15, Mu: 0.9}},
			CurrentRoute: -1,
		}},
		{Kind: KindSlotInfo, Seq: 3, From: -1, SlotInfo: &SlotInfo{Slot: 7, Counts: map[int]int{1: 2, 3: 1}}},
		{Kind: KindRequest, Seq: 4, From: 4, Request: &Request{Slot: 7, HasUpdate: true, Route: 1, Tau: 0.5, B: []int{1, 3}}},
		{Kind: KindGrant, Seq: 5, From: -1, Grant: &Grant{Slot: 7}},
		{Kind: KindDecision, Seq: 6, From: 4, Decision: &Decision{Slot: 7, Route: 1}},
		{Kind: KindTerminate, Seq: 7, From: -1, Terminate: &Terminate{Slot: 9}},
		{Kind: KindGossipDelta, Seq: 8, Epoch: 1, From: -1,
			GossipDelta: &GossipDelta{Shard: 2, Epoch: 5, Counts: map[int]int{1: -1, 3: 2}}},
		{Kind: KindShardRequests, Seq: 9, Epoch: 2, From: -1,
			ShardRequests: &ShardRequests{Shard: 1, Slot: 4, Reqs: []ShardRequest{
				{User: 3, Route: 2, Tau: 0.75, B: []int{1, 3}},
				{User: 5, Route: 0, Tau: 0.25, B: nil},
			}}},
		{Kind: KindSnapshot, Seq: 10, From: -1,
			Snapshot: &Snapshot{Shard: 0, Round: 6, Epochs: []int{7, 6},
				Counts: []int{2, 0, 1}, Contrib: [][]int{{1, 0, 1}, {1, 0, 0}}}},
	}
	for _, m := range msgs {
		got := roundTrip(t, m)
		if !reflect.DeepEqual(m, got) {
			t.Errorf("round trip of %v:\n got %+v\nwant %+v", m.Kind, got, m)
		}
	}
}

func TestEncodeRejectsInvalid(t *testing.T) {
	var buf bytes.Buffer
	c := NewCodec(&buf, &buf)
	if err := c.Encode(&Message{Kind: KindGrant}); err == nil {
		t.Error("Encode accepted invalid message")
	}
	if buf.Len() != 0 {
		t.Error("invalid message wrote bytes")
	}
}

func TestDecodeEOF(t *testing.T) {
	var buf bytes.Buffer
	c := NewCodec(&buf, &buf)
	if _, err := c.Decode(); err == nil {
		t.Error("Decode on empty stream succeeded")
	}
}

func TestStreamedSequence(t *testing.T) {
	var buf bytes.Buffer
	enc := NewCodec(&buf, &buf)
	for i := 0; i < 10; i++ {
		m := &Message{Kind: KindGrant, Seq: uint64(i), From: -1, Grant: &Grant{Slot: i}}
		if err := enc.Encode(m); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 10; i++ {
		m, err := enc.Decode()
		if err != nil {
			t.Fatal(err)
		}
		if m.Grant.Slot != i || m.Seq != uint64(i) {
			t.Fatalf("message %d decoded as %+v", i, m)
		}
	}
}
