package wire

import (
	"bytes"
	"flag"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/rng"
)

// The binary codec only ships behind proof: a committed golden corpus (byte
// stability, go-batsd style), a property-based differential suite against
// the gob oracle, reuse/zero-alloc checks, and adversarial decoding tests.

var updateGolden = flag.Bool("update-golden", false, "rewrite internal/wire/testdata golden frames")

// goldenCases covers every kind plus the encoding edge cases: empty B, nil
// maps, nil routes, maximal varints, and all-zero vs sampled trace context.
// Each case is one committed testdata/<name>.bin frame.
func goldenCases() []struct {
	name string
	msg  *Message
} {
	return []struct {
		name string
		msg  *Message
	}{
		{"hello", &Message{Kind: KindHello, Seq: 1, From: 2, Hello: &Hello{User: 2, Resume: true}}},
		{"init", &Message{Kind: KindInit, Seq: 2, Epoch: 1, From: -1, Init: &Init{
			User: 2,
			Routes: []RouteInfo{
				{Tasks: []int{0, 4}, DetourCost: 1.25, CongestionCost: 0.5},
				{Tasks: nil, DetourCost: 0, CongestionCost: 3},
			},
			Tasks:        map[int]TaskParam{0: {A: 11, Mu: 0.2}, 4: {A: 19.5, Mu: 0.8}},
			CurrentRoute: -1,
		}}},
		{"slotinfo", &Message{Kind: KindSlotInfo, Seq: 3, From: -1,
			TraceID: 0xdeadbeefcafef00d, SpanID: 0x1234, TraceFlags: 1,
			SlotInfo: &SlotInfo{Slot: 5, Counts: map[int]int{0: 3, 4: 1, -7: 2}}}},
		{"request", &Message{Kind: KindRequest, Seq: 4, Epoch: 2, From: 2,
			TraceID: 0xdeadbeefcafef00d, SpanID: 0x1235, TraceFlags: 1,
			Request: &Request{Slot: 5, HasUpdate: true, Route: 1, Tau: 0.25, B: []int{0, 4}}}},
		{"grant", &Message{Kind: KindGrant, Seq: 5, From: -1, Grant: &Grant{Slot: 5}}},
		{"decision", &Message{Kind: KindDecision, Seq: 6, From: 2, Decision: &Decision{Slot: 5, Route: 1}}},
		{"terminate", &Message{Kind: KindTerminate, Seq: 7, From: -1, Terminate: &Terminate{Slot: 6}}},
		{"gossipdelta", &Message{Kind: KindGossipDelta, Seq: 8, Epoch: 2, From: -1,
			TraceID: 0xdeadbeefcafef00d, SpanID: 0x1236, TraceFlags: 1,
			GossipDelta: &GossipDelta{Shard: 3, Epoch: 12, Counts: map[int]int{0: 2, 4: -1, -7: 1}}}},
		{"shardrequests", &Message{Kind: KindShardRequests, Seq: 13, Epoch: 3, From: -1,
			TraceID: 0xdeadbeefcafef00d, SpanID: 0x1237, TraceFlags: 1,
			ShardRequests: &ShardRequests{Shard: 1, Slot: 4, Reqs: []ShardRequest{
				{User: 3, Route: 2, Tau: 0.75, B: []int{1, 3}},
				{User: 5, Route: 0, Tau: 0.25, B: nil},
			}}}},
		{"snapshot", &Message{Kind: KindSnapshot, Seq: 14, From: -1,
			Snapshot: &Snapshot{Shard: 0, Round: 6, Epochs: []int{7, 6, 6},
				Counts: []int{2, 0, 1}, Contrib: [][]int{{1, 0, 1}, {1, 0, 0}, {0, 0, 0}}}}},
		// Edge cases.
		{"init_nil", &Message{Kind: KindInit, From: -1, Init: &Init{User: 0, Routes: nil, Tasks: nil, CurrentRoute: -1}}},
		{"request_empty_b", &Message{Kind: KindRequest, Seq: 9, From: 3,
			Request: &Request{Slot: 2, HasUpdate: false, Route: -1, Tau: 0, B: []int{}}}},
		{"slotinfo_nil_counts", &Message{Kind: KindSlotInfo, Seq: 10, From: -1, SlotInfo: &SlotInfo{Slot: 1}}},
		// Nil and empty maps are distinct on the wire (matching gob).
		{"slotinfo_empty_counts", &Message{Kind: KindSlotInfo, Seq: 10, From: -1, SlotInfo: &SlotInfo{Slot: 1, Counts: map[int]int{}}}},
		{"max_varints", &Message{Kind: KindRequest, Seq: ^uint64(0), Epoch: ^uint32(0), From: math.MinInt64,
			Request: &Request{Slot: math.MaxInt64, HasUpdate: true, Route: math.MinInt64,
				Tau: math.MaxFloat64, B: []int{math.MaxInt64, math.MinInt64, 0}}}},
		// Nil vs empty delta batches are distinct too (same map rule).
		{"gossipdelta_nil_counts", &Message{Kind: KindGossipDelta, Seq: 12, From: -1,
			GossipDelta: &GossipDelta{Shard: 0, Epoch: 1}}},
		{"gossipdelta_empty_counts", &Message{Kind: KindGossipDelta, Seq: 12, From: -1,
			GossipDelta: &GossipDelta{Shard: 0, Epoch: 1, Counts: map[int]int{}}}},
		{"shardrequests_terminating", &Message{Kind: KindShardRequests, Seq: 15, From: -1,
			ShardRequests: &ShardRequests{Shard: 0, Slot: 9, Terminating: true}}},
		{"snapshot_empty", &Message{Kind: KindSnapshot, Seq: 16, From: -1,
			Snapshot: &Snapshot{Shard: 2, Round: 1}}},
		{"trace_zero", &Message{Kind: KindGrant, Seq: 11, From: -1, Grant: &Grant{Slot: 3}}},
		{"trace_sampled", &Message{Kind: KindGrant, Seq: 11, From: -1,
			TraceID: ^uint64(0), SpanID: ^uint64(0), TraceFlags: 0xff, Grant: &Grant{Slot: 3}}},
	}
}

// gobRoundTrip passes m through the gob oracle. Gob normalizes empty
// slices/maps to nil on decode; the binary codec must agree exactly.
func gobRoundTrip(t testing.TB, m *Message) *Message {
	t.Helper()
	var buf bytes.Buffer
	c := NewCodec(&buf, &buf)
	if err := c.Encode(m); err != nil {
		t.Fatalf("gob encode: %v", err)
	}
	out, err := c.Decode()
	if err != nil {
		t.Fatalf("gob decode: %v", err)
	}
	return out
}

// binaryRoundTrip passes m through the binary codec.
func binaryRoundTrip(t testing.TB, m *Message) *Message {
	t.Helper()
	var buf bytes.Buffer
	c := NewBinaryCodec(&buf, &buf)
	if err := c.Encode(m); err != nil {
		t.Fatalf("binary encode: %v", err)
	}
	out, err := c.Decode()
	if err != nil {
		t.Fatalf("binary decode: %v", err)
	}
	return out
}

// TestGoldenCorpus locks the binary encoding byte-for-byte against the
// committed testdata frames: any unintended change to the wire format fails
// here before it can break cross-version interop. Regenerate deliberately
// with -update-golden (and bump BinaryVersion when the change is real).
func TestGoldenCorpus(t *testing.T) {
	for _, tc := range goldenCases() {
		path := filepath.Join("testdata", tc.name+".bin")
		frame, err := AppendFrame(nil, tc.msg)
		if err != nil {
			t.Fatalf("%s: encode: %v", tc.name, err)
		}
		if *updateGolden {
			if err := os.WriteFile(path, frame, 0o644); err != nil {
				t.Fatalf("%s: write golden: %v", tc.name, err)
			}
			continue
		}
		want, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("%s: missing golden file (run go test ./internal/wire -run TestGoldenCorpus -update-golden): %v", tc.name, err)
		}
		if !bytes.Equal(frame, want) {
			t.Errorf("%s: encoding changed: got %d bytes % x, want %d bytes % x",
				tc.name, len(frame), frame, len(want), want)
		}
		// The committed bytes must also decode back to the gob-normalized
		// message, so the corpus pins decode behavior too.
		c := NewBinaryCodec(bytes.NewReader(want), nil)
		got, err := c.Decode()
		if err != nil {
			t.Fatalf("%s: decode golden: %v", tc.name, err)
		}
		if wantMsg := gobRoundTrip(t, tc.msg); !reflect.DeepEqual(got, wantMsg) {
			t.Errorf("%s: golden decode mismatch:\n got %+v\nwant %+v", tc.name, got, wantMsg)
		}
	}
}

// TestCanonicalMapOrder proves the encoding is canonical: maps built in
// different insertion orders produce identical bytes (keys are sorted on
// encode), which is what makes golden frames byte-stable.
func TestCanonicalMapOrder(t *testing.T) {
	a := map[int]int{}
	b := map[int]int{}
	for i := 0; i < 50; i++ {
		a[i*7-20] = i
	}
	for i := 49; i >= 0; i-- {
		b[i*7-20] = i
	}
	ma := &Message{Kind: KindSlotInfo, SlotInfo: &SlotInfo{Slot: 1, Counts: a}}
	mb := &Message{Kind: KindSlotInfo, SlotInfo: &SlotInfo{Slot: 1, Counts: b}}
	fa, err := AppendFrame(nil, ma)
	if err != nil {
		t.Fatal(err)
	}
	fb, err := AppendFrame(nil, mb)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(fa, fb) {
		t.Error("same map content encoded to different bytes")
	}
}

// u64 draws a full-range uint64 from the stream.
func u64(s *rng.Stream) uint64 {
	return uint64(s.Intn(1<<30)) | uint64(s.Intn(1<<30))<<30 | uint64(s.Intn(16))<<60
}

// randInt draws an int, occasionally an extreme value.
func randInt(s *rng.Stream) int {
	if s.Bool(0.1) {
		return []int{0, 1, -1, math.MaxInt64, math.MinInt64, math.MaxInt32, math.MinInt32}[s.Intn(7)]
	}
	return s.IntRange(-1000, 1000)
}

// randFloat draws a finite-or-infinite float64 (never NaN: NaN breaks
// DeepEqual on both sides equally, proving nothing).
func randFloat(s *rng.Stream) float64 {
	if s.Bool(0.1) {
		return []float64{0, math.Inf(1), math.Inf(-1), math.MaxFloat64, math.SmallestNonzeroFloat64, -1e-300}[s.Intn(6)]
	}
	return s.Norm(0, 100)
}

// randIntSlice draws a slice that is sometimes nil and sometimes empty —
// both must normalize identically through both codecs.
func randIntSlice(s *rng.Stream, maxLen int) []int {
	switch s.Intn(6) {
	case 0:
		return nil
	case 1:
		return []int{}
	}
	out := make([]int, s.Intn(maxLen+1))
	for i := range out {
		out[i] = randInt(s)
	}
	return out
}

// randomMessage generates one valid message of a random kind with
// full-range header fields and randomized payload shapes.
func randomMessage(s *rng.Stream) *Message {
	m := &Message{
		Kind:       Kind(s.IntRange(int(KindHello), int(KindSnapshot))),
		Seq:        u64(s),
		Epoch:      uint32(u64(s)),
		From:       randInt(s),
		TraceID:    u64(s),
		SpanID:     u64(s),
		TraceFlags: uint8(s.Intn(256)),
	}
	switch m.Kind {
	case KindHello:
		m.Hello = &Hello{User: randInt(s), Resume: s.Bool(0.5)}
	case KindInit:
		in := &Init{User: randInt(s), CurrentRoute: randInt(s)}
		nr := s.Intn(5)
		for i := 0; i < nr; i++ {
			in.Routes = append(in.Routes, RouteInfo{
				Tasks:          randIntSlice(s, 6),
				DetourCost:     randFloat(s),
				CongestionCost: randFloat(s),
			})
		}
		switch s.Intn(4) {
		case 0: // nil map
		case 1:
			in.Tasks = map[int]TaskParam{}
		default:
			in.Tasks = map[int]TaskParam{}
			for i := s.Intn(8); i > 0; i-- {
				in.Tasks[randInt(s)] = TaskParam{A: randFloat(s), Mu: randFloat(s)}
			}
		}
		m.Init = in
	case KindSlotInfo:
		si := &SlotInfo{Slot: randInt(s)}
		switch s.Intn(4) {
		case 0: // nil map
		case 1:
			si.Counts = map[int]int{}
		default:
			si.Counts = map[int]int{}
			for i := s.Intn(10); i > 0; i-- {
				si.Counts[randInt(s)] = randInt(s)
			}
		}
		m.SlotInfo = si
	case KindRequest:
		m.Request = &Request{
			Slot:      randInt(s),
			HasUpdate: s.Bool(0.5),
			Route:     randInt(s),
			Tau:       randFloat(s),
			B:         randIntSlice(s, 8),
		}
	case KindGrant:
		m.Grant = &Grant{Slot: randInt(s)}
	case KindDecision:
		m.Decision = &Decision{Slot: randInt(s), Route: randInt(s)}
	case KindTerminate:
		m.Terminate = &Terminate{Slot: randInt(s)}
	case KindGossipDelta:
		g := &GossipDelta{Shard: s.Intn(16), Epoch: s.Intn(1 << 20)}
		switch s.Intn(4) {
		case 0: // nil map
		case 1:
			g.Counts = map[int]int{}
		default:
			g.Counts = map[int]int{}
			for i := s.Intn(10); i > 0; i-- {
				g.Counts[randInt(s)] = randInt(s)
			}
		}
		m.GossipDelta = g
	case KindShardRequests:
		sr := &ShardRequests{Shard: s.Intn(16), Slot: randInt(s), Terminating: s.Bool(0.2)}
		nr := s.Intn(6)
		for i := 0; i < nr; i++ {
			sr.Reqs = append(sr.Reqs, ShardRequest{
				User:  randInt(s),
				Route: randInt(s),
				Tau:   randFloat(s),
				B:     randIntSlice(s, 6),
			})
		}
		m.ShardRequests = sr
	case KindSnapshot:
		sn := &Snapshot{
			Shard:  s.Intn(16),
			Round:  randInt(s),
			Epochs: randIntSlice(s, 8),
			Counts: randIntSlice(s, 12),
		}
		// Contribution rows exercise nil, empty, and populated inner
		// slices — gob normalizes empty rows to nil and the binary codec
		// must agree.
		nc := s.Intn(5)
		for i := 0; i < nc; i++ {
			sn.Contrib = append(sn.Contrib, randIntSlice(s, 8))
		}
		m.Snapshot = sn
	}
	return m
}

// TestDifferentialGobBinary is the property-based differential suite: ~10k
// seeded random valid messages must round-trip through the binary codec to
// exactly what the gob oracle produces (reflect.DeepEqual compares the
// Init.Tasks and SlotInfo.Counts maps order-insensitively by construction),
// and the binary encoding must be a canonical fixpoint.
func TestDifferentialGobBinary(t *testing.T) {
	n := 10_000
	if testing.Short() {
		n = 1_000
	}
	s := rng.New(20260808)
	for i := 0; i < n; i++ {
		m := randomMessage(s)
		gobOut := gobRoundTrip(t, m)
		binOut := binaryRoundTrip(t, m)
		if !reflect.DeepEqual(gobOut, binOut) {
			t.Fatalf("message %d (%v): differential mismatch:\n gob %+v\n bin %+v\n in  %+v",
				i, m.Kind, gobOut, binOut, m)
		}
		// Canonical encoding: re-encoding the decoded message reproduces the
		// original bytes exactly.
		e1, err := AppendFrame(nil, m)
		if err != nil {
			t.Fatalf("message %d: encode: %v", i, err)
		}
		e2, err := AppendFrame(nil, binOut)
		if err != nil {
			t.Fatalf("message %d: re-encode: %v", i, err)
		}
		if !bytes.Equal(e1, e2) {
			t.Fatalf("message %d (%v): encoding not canonical", i, m.Kind)
		}
	}
}

// TestBinaryStreamedSequence mirrors the gob streaming test: many messages
// through one codec pair, in order.
func TestBinaryStreamedSequence(t *testing.T) {
	var buf bytes.Buffer
	c := NewBinaryCodec(&buf, &buf)
	for i := 0; i < 10; i++ {
		m := &Message{Kind: KindGrant, Seq: uint64(i), From: -1, Grant: &Grant{Slot: i}}
		if err := c.Encode(m); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 10; i++ {
		m, err := c.Decode()
		if err != nil {
			t.Fatal(err)
		}
		if m.Grant.Slot != i || m.Seq != uint64(i) {
			t.Fatalf("message %d decoded as %+v", i, m)
		}
	}
	if _, err := c.Decode(); err == nil {
		t.Fatal("decode past end of stream succeeded")
	}
}

// TestDecodeIntoReuse checks the reuse contract: repeated decodes of the
// same kind into one message are allocation-free, and alternating kinds
// still decode correctly.
func TestDecodeIntoReuse(t *testing.T) {
	si := &Message{Kind: KindSlotInfo, Seq: 3, From: -1,
		SlotInfo: &SlotInfo{Slot: 5, Counts: map[int]int{0: 3, 4: 1, 9: 7}}}
	frame, err := AppendFrame(nil, si)
	if err != nil {
		t.Fatal(err)
	}
	r := bytes.NewReader(frame)
	c := NewBinaryCodec(r, nil)
	var m Message
	// Warm up the reusable storage, then demand zero allocations.
	r.Reset(frame)
	if err := c.DecodeInto(&m); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		r.Reset(frame)
		if err := c.DecodeInto(&m); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("steady-state DecodeInto allocates %.1f objects/op, want 0", allocs)
	}
	if want := gobRoundTrip(t, si); !reflect.DeepEqual(&m, want) {
		t.Errorf("reused decode mismatch:\n got %+v\nwant %+v", &m, want)
	}
	// Alternating kinds through the same message must stay correct.
	for _, msg := range corpusMessages() {
		frame, err := AppendFrame(nil, msg)
		if err != nil {
			t.Fatal(err)
		}
		r.Reset(frame)
		if err := c.DecodeInto(&m); err != nil {
			t.Fatalf("%v: %v", msg.Kind, err)
		}
		if want := gobRoundTrip(t, msg); !reflect.DeepEqual(&m, want) {
			t.Errorf("%v: alternating decode mismatch:\n got %+v\nwant %+v", msg.Kind, &m, want)
		}
	}
}

// TestEncodeZeroAlloc demands the warm encode path never allocates.
func TestEncodeZeroAlloc(t *testing.T) {
	msgs := []*Message{
		{Kind: KindSlotInfo, Seq: 3, From: -1, SlotInfo: &SlotInfo{Slot: 5, Counts: map[int]int{0: 3, 4: 1}}},
		{Kind: KindRequest, Seq: 4, From: 2, Request: &Request{Slot: 5, HasUpdate: true, Route: 1, Tau: 0.25, B: []int{0, 4}}},
		{Kind: KindGrant, Seq: 5, From: -1, Grant: &Grant{Slot: 5}},
	}
	for _, m := range msgs {
		var sink bytes.Buffer
		sink.Grow(1 << 16)
		c := NewBinaryCodec(nil, &sink)
		if err := c.Encode(m); err != nil { // warm the scratch
			t.Fatal(err)
		}
		allocs := testing.AllocsPerRun(100, func() {
			sink.Reset()
			if err := c.Encode(m); err != nil {
				t.Fatal(err)
			}
		})
		if allocs != 0 {
			t.Errorf("%v: warm Encode allocates %.1f objects/op, want 0", m.Kind, allocs)
		}
	}
}

// encodeAllBinary concatenates the binary frames of msgs.
func encodeAllBinary(t testing.TB, msgs []*Message) []byte {
	t.Helper()
	var out []byte
	for _, m := range msgs {
		var err error
		out, err = AppendFrame(out, m)
		if err != nil {
			t.Fatal(err)
		}
	}
	return out
}

// TestBinaryDecodeTruncated cuts a valid stream at every byte boundary:
// each prefix must yield clean errors (or valid prefix messages), never a
// panic, mirroring the gob oracle's hardening test.
func TestBinaryDecodeTruncated(t *testing.T) {
	full := encodeAllBinary(t, corpusMessages())
	for cut := 0; cut < len(full); cut++ {
		c := NewBinaryCodec(bytes.NewReader(full[:cut]), nil)
		for {
			m, err := c.Decode()
			if err != nil {
				break
			}
			if err := m.Validate(); err != nil {
				t.Fatalf("cut %d: decoded invalid message: %v", cut, err)
			}
		}
	}
}

// TestBinaryDecodeCorrupted flips each byte of a valid stream in turn;
// Decode must either error out or keep producing valid messages.
func TestBinaryDecodeCorrupted(t *testing.T) {
	full := encodeAllBinary(t, corpusMessages())
	for i := range full {
		data := append([]byte(nil), full...)
		data[i] ^= 0x5a
		c := NewBinaryCodec(bytes.NewReader(data), nil)
		for j := 0; j < 64; j++ {
			m, err := c.Decode()
			if err != nil {
				break
			}
			if err := m.Validate(); err != nil {
				t.Fatalf("byte %d corrupted: decoded invalid message: %v", i, err)
			}
		}
	}
}

// TestBinaryDecodeAdversarial hand-crafts hostile inputs: oversized length
// prefixes, huge collection lengths, bad magic/version/kind, and trailing
// garbage must all surface as errors without large allocations or panics.
func TestBinaryDecodeAdversarial(t *testing.T) {
	valid, err := AppendFrame(nil, &Message{Kind: KindGrant, From: -1, Grant: &Grant{Slot: 1}})
	if err != nil {
		t.Fatal(err)
	}
	mutate := func(f func(b []byte) []byte) []byte {
		return f(append([]byte(nil), valid...))
	}
	cases := map[string][]byte{
		"empty":     {},
		"short-len": {0xff, 0x00},
		"zero-len":  {0, 0, 0, 0},
		"huge-len":  {0xff, 0xff, 0xff, 0xff},
		"over-max":  {0x01, 0x00, 0x10, 0x00}, // MaxFrameLen+1
		"bad-magic": mutate(func(b []byte) []byte { b[4] = 'X'; return b }),
		"bad-ver":   mutate(func(b []byte) []byte { b[6] = 99; return b }),
		"bad-kind":  mutate(func(b []byte) []byte { b[7] = 200; return b }),
		"kind-zero": mutate(func(b []byte) []byte { b[7] = 0; return b }),
		"trailing":  mutate(func(b []byte) []byte { b[0] += 2; return append(b, 0xaa, 0xbb) }),
		"body-cut":  mutate(func(b []byte) []byte { b[0]--; return b[:len(b)-1] }),
		// Valid header, slot 0, then a ~4-billion-entry count claim: the
		// length check must reject it before allocating anything.
		"huge-count": append([]byte{47, 0, 0, 0, 'v', 'c', BinaryVersion, byte(KindSlotInfo)}, append(make([]byte, 37), 0x00, 0xff, 0xff, 0xff, 0xff, 0x0f)...),
	}
	for name, data := range cases {
		c := NewBinaryCodec(bytes.NewReader(data), nil)
		if m, err := c.Decode(); err == nil {
			t.Errorf("%s: hostile input decoded as %+v", name, m)
		}
	}
}
