package wire

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"testing"
	"time"
)

// muxPair returns two mux sessions joined by an in-memory pipe.
func muxPair(t *testing.T, opts MuxOptions) (*Mux, *Mux) {
	t.Helper()
	a, b := net.Pipe()
	ma := NewMux(a, opts)
	mb := NewMux(b, opts)
	t.Cleanup(func() { ma.Close(); mb.Close() })
	return ma, mb
}

func grantMsg(user, slot int) *Message {
	return &Message{Kind: KindGrant, Seq: uint64(slot), From: user, Grant: &Grant{Slot: slot}}
}

// recvTimeout guards pipe tests against deadlocks: a Recv that should
// complete must do so promptly.
func recvTimeout(t *testing.T, c *MuxChannel) (*Message, error) {
	t.Helper()
	type res struct {
		m   *Message
		err error
	}
	ch := make(chan res, 1)
	go func() {
		m, err := c.Recv()
		ch <- res{m, err}
	}()
	select {
	case r := <-ch:
		return r.m, r.err
	case <-time.After(5 * time.Second):
		t.Fatal("Recv did not complete")
		return nil, nil
	}
}

// TestMuxRoundTrip drives several channels concurrently in both directions
// over one shared stream and checks every message arrives on the right
// channel, in per-channel order.
func TestMuxRoundTrip(t *testing.T) {
	ma, mb := muxPair(t, MuxOptions{})
	const channels, msgs = 5, 40
	var wg sync.WaitGroup
	errc := make(chan error, 2*channels)
	for id := uint32(0); id < channels; id++ {
		ca, err := ma.Channel(id)
		if err != nil {
			t.Fatal(err)
		}
		cb, err := mb.Channel(id)
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(2)
		go func(id uint32, c *MuxChannel) {
			defer wg.Done()
			for i := 0; i < msgs; i++ {
				if err := c.Send(grantMsg(int(id), i)); err != nil {
					errc <- fmt.Errorf("channel %d send %d: %w", id, i, err)
					return
				}
			}
		}(id, ca)
		go func(id uint32, c *MuxChannel) {
			defer wg.Done()
			for i := 0; i < msgs; i++ {
				m, err := c.Recv()
				if err != nil {
					errc <- fmt.Errorf("channel %d recv %d: %w", id, i, err)
					return
				}
				if m.From != int(id) || m.Grant.Slot != i {
					errc <- fmt.Errorf("channel %d message %d: got from=%d slot=%d", id, i, m.From, m.Grant.Slot)
					return
				}
			}
		}(id, cb)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
}

// TestMuxAccept checks the no-handshake open: the first frame on an
// unclaimed channel surfaces it via Accept on the other side.
func TestMuxAccept(t *testing.T) {
	ma, mb := muxPair(t, MuxOptions{})
	ca, err := ma.Channel(7)
	if err != nil {
		t.Fatal(err)
	}
	if err := ca.Send(grantMsg(7, 1)); err != nil {
		t.Fatal(err)
	}
	cb, err := mb.Accept()
	if err != nil {
		t.Fatal(err)
	}
	if cb.ID() != 7 {
		t.Fatalf("accepted channel %d, want 7", cb.ID())
	}
	m, err := recvTimeout(t, cb)
	if err != nil || m.Grant.Slot != 1 {
		t.Fatalf("recv = %+v, %v", m, err)
	}
}

// TestMuxFairDrain proves round-robin draining: with channel A's queue
// loaded and one frame queued on channel B, B's frame goes out second, not
// after all of A's.
func TestMuxFairDrain(t *testing.T) {
	client, server := net.Pipe()
	m := NewMux(client, MuxOptions{})
	defer m.Close()
	ca, err := m.Channel(0)
	if err != nil {
		t.Fatal(err)
	}
	cb, err := m.Channel(1)
	if err != nil {
		t.Fatal(err)
	}
	// No reader on the server side yet, so the writer parks inside the
	// first Write; every later Send is queued before draining starts.
	for i := 0; i < 3; i++ {
		if err := ca.Send(grantMsg(0, i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := cb.Send(grantMsg(1, 0)); err != nil {
		t.Fatal(err)
	}
	br := bufio.NewReader(server)
	var buf []byte
	var order []uint32
	for i := 0; i < 4; i++ {
		id, typ, _, nbuf, err := readMuxFrame(br, buf, 1<<20)
		buf = nbuf
		if err != nil || typ != muxFrameData {
			t.Fatalf("frame %d: typ=%d err=%v", i, typ, err)
		}
		order = append(order, id)
	}
	// A's first frame was in flight before B queued anything; after that the
	// round-robin must serve B before A's remaining backlog.
	want := []uint32{0, 1, 0, 0}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("drain order %v, want %v", order, want)
		}
	}
}

// TestMuxBackpressure checks Send blocks on a full channel queue without
// stalling siblings, and unblocks once the writer drains.
func TestMuxBackpressure(t *testing.T) {
	client, server := net.Pipe()
	m := NewMux(client, MuxOptions{SendQueue: 2})
	defer m.Close()
	ca, err := m.Channel(0)
	if err != nil {
		t.Fatal(err)
	}
	cb, err := m.Channel(1)
	if err != nil {
		t.Fatal(err)
	}
	// No reader: first frame parks the writer, two more fill A's queue.
	for i := 0; i < 3; i++ {
		if err := ca.Send(grantMsg(0, i)); err != nil {
			t.Fatal(err)
		}
	}
	blocked := make(chan error, 1)
	go func() { blocked <- ca.Send(grantMsg(0, 3)) }()
	select {
	case err := <-blocked:
		t.Fatalf("send on full queue returned early: %v", err)
	case <-time.After(50 * time.Millisecond):
	}
	// The sibling channel's queue is empty; its Send must not block.
	done := make(chan error, 1)
	go func() { done <- cb.Send(grantMsg(1, 0)) }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("sibling send: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("sibling send blocked behind a full sibling queue")
	}
	// Draining the stream releases the parked Send.
	go io.Copy(io.Discard, server)
	select {
	case err := <-blocked:
		if err != nil {
			t.Fatalf("unblocked send: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("send did not unblock after drain")
	}
}

// TestMuxStallIsolation is the one-channel-stalls-don't-block-siblings
// guarantee: a flooded channel whose consumer never reads fails alone with
// ErrRecvOverflow while a sibling keeps ping-ponging.
func TestMuxStallIsolation(t *testing.T) {
	const highWater = 4
	ma, mb := muxPair(t, MuxOptions{RecvHighWater: highWater})
	sa, err := ma.Channel(0) // stalled channel, sender side
	if err != nil {
		t.Fatal(err)
	}
	sb, err := mb.Channel(0) // stalled channel, consumer never reads
	if err != nil {
		t.Fatal(err)
	}
	pa, err := ma.Channel(1) // healthy sibling
	if err != nil {
		t.Fatal(err)
	}
	pb, err := mb.Channel(1)
	if err != nil {
		t.Fatal(err)
	}
	// Flood the stalled channel well past the high-water mark.
	for i := 0; i < highWater+4; i++ {
		if err := sa.Send(grantMsg(0, i)); err != nil {
			t.Fatal(err)
		}
	}
	// The sibling keeps working throughout: every ping forces the shared
	// writer and reader past the flooded channel's frames.
	for i := 0; i < 20; i++ {
		if err := pa.Send(grantMsg(1, i)); err != nil {
			t.Fatalf("ping %d: %v", i, err)
		}
		m, err := recvTimeout(t, pb)
		if err != nil || m.Grant.Slot != i {
			t.Fatalf("pong %d: %+v, %v", i, m, err)
		}
	}
	// The stalled channel delivers what was queued below the high-water
	// mark, then fails with ErrRecvOverflow — and only that channel fails.
	for i := 0; i < highWater; i++ {
		m, err := recvTimeout(t, sb)
		if err != nil || m.Grant.Slot != i {
			t.Fatalf("queued message %d: %+v, %v", i, m, err)
		}
	}
	if _, err := recvTimeout(t, sb); !errors.Is(err, ErrRecvOverflow) {
		t.Fatalf("stalled channel error = %v, want ErrRecvOverflow", err)
	}
	if err := ma.Err(); err != nil {
		t.Fatalf("session failed: %v", err)
	}
	if err := pa.Send(grantMsg(1, 99)); err != nil {
		t.Fatalf("sibling send after overflow: %v", err)
	}
	if m, err := recvTimeout(t, pb); err != nil || m.Grant.Slot != 99 {
		t.Fatalf("sibling recv after overflow: %+v, %v", m, err)
	}
}

// TestMuxChannelClose checks per-channel teardown: queued messages drain
// first, the peer then sees a closed-by-peer error, and sibling channels
// are untouched.
func TestMuxChannelClose(t *testing.T) {
	ma, mb := muxPair(t, MuxOptions{})
	ca, err := ma.Channel(0)
	if err != nil {
		t.Fatal(err)
	}
	cb, err := mb.Channel(0)
	if err != nil {
		t.Fatal(err)
	}
	pa, err := ma.Channel(1)
	if err != nil {
		t.Fatal(err)
	}
	pb, err := mb.Channel(1)
	if err != nil {
		t.Fatal(err)
	}
	if err := ca.Send(grantMsg(0, 1)); err != nil {
		t.Fatal(err)
	}
	if err := ca.Close(); err != nil {
		t.Fatal(err)
	}
	if err := ca.Close(); err != nil {
		t.Fatal("second close:", err)
	}
	// The in-flight message drains before the close surfaces.
	if m, err := recvTimeout(t, cb); err != nil || m.Grant.Slot != 1 {
		t.Fatalf("drain before close: %+v, %v", m, err)
	}
	if _, err := recvTimeout(t, cb); err == nil {
		t.Fatal("recv on peer-closed channel succeeded")
	}
	if err := cb.Send(grantMsg(0, 2)); !errors.Is(err, ErrChannelClosed) {
		t.Fatalf("send to peer-closed channel = %v, want ErrChannelClosed", err)
	}
	if err := ca.Send(grantMsg(0, 3)); !errors.Is(err, ErrChannelClosed) {
		t.Fatalf("send on locally closed channel = %v, want ErrChannelClosed", err)
	}
	// The sibling is unaffected.
	if err := pa.Send(grantMsg(1, 5)); err != nil {
		t.Fatal(err)
	}
	if m, err := recvTimeout(t, pb); err != nil || m.Grant.Slot != 5 {
		t.Fatalf("sibling after close: %+v, %v", m, err)
	}
}

// TestMuxSessionClose checks Close fails everything on both sides: local
// channels report ErrMuxClosed, and the peer's session dies on the broken
// stream.
func TestMuxSessionClose(t *testing.T) {
	ma, mb := muxPair(t, MuxOptions{})
	ca, err := ma.Channel(0)
	if err != nil {
		t.Fatal(err)
	}
	cb, err := mb.Channel(0)
	if err != nil {
		t.Fatal(err)
	}
	if err := ca.Send(grantMsg(0, 1)); err != nil {
		t.Fatal(err)
	}
	if m, err := recvTimeout(t, cb); err != nil || m.Grant.Slot != 1 {
		t.Fatalf("pre-close recv: %+v, %v", m, err)
	}
	ma.Close()
	if err := ca.Send(grantMsg(0, 2)); !errors.Is(err, ErrMuxClosed) {
		t.Fatalf("send after close = %v, want ErrMuxClosed", err)
	}
	if _, err := recvTimeout(t, ca); !errors.Is(err, ErrMuxClosed) {
		t.Fatalf("recv after close = %v, want ErrMuxClosed", err)
	}
	if _, err := ma.Channel(1); !errors.Is(err, ErrMuxClosed) {
		t.Fatalf("open after close = %v, want ErrMuxClosed", err)
	}
	// The peer's reader hits the closed pipe and fails its session too.
	if _, err := recvTimeout(t, cb); err == nil {
		t.Fatal("peer recv after session close succeeded")
	}
	if _, err := mb.Accept(); err == nil {
		t.Fatal("peer accept after session close succeeded")
	}
}

// TestMuxHostileChannelID checks that a peer announcing a channel ID above
// the configured bound kills the session instead of allocating for it.
func TestMuxHostileChannelID(t *testing.T) {
	client, server := net.Pipe()
	m := NewMux(client, MuxOptions{MaxChannelID: 8})
	defer m.Close()
	if _, err := m.Channel(9); err == nil {
		t.Fatal("local channel above bound accepted")
	}
	c, err := m.Channel(1)
	if err != nil {
		t.Fatal(err)
	}
	// Hand-write a frame for channel 1000 on the raw side.
	frame, err := AppendFrame([]byte{0xe8, 0x07, muxFrameData}, grantMsg(0, 1))
	if err != nil {
		t.Fatal(err)
	}
	go server.Write(frame)
	if _, err := recvTimeout(t, c); err == nil {
		t.Fatal("session survived hostile channel id")
	}
}
