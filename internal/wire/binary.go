package wire

// This file implements the hand-rolled binary codec that carries the
// protocol in production. The gob Codec (wire.go) is retained as the
// differential-testing oracle: the golden corpus, the property-based
// differential suite, and the fuzz targets all prove the two agree before
// the binary format is trusted.
//
// Frame layout (see docs/WIRE.md for the full diagram):
//
//	+----------------+------------------------------------------+
//	| length uint32  | frame: fixed header + per-kind body      |
//	| little-endian  | (length counts header+body, not itself)  |
//	+----------------+------------------------------------------+
//
// Fixed header, 41 bytes, all little-endian:
//
//	off  0  magic   2 bytes  'v' 'c'
//	off  2  version 1 byte   BinaryVersion
//	off  3  kind    1 byte   Kind
//	off  4  seq     8 bytes  uint64
//	off 12  epoch   4 bytes  uint32
//	off 16  from    8 bytes  int64 (two's complement)
//	off 24  trace   8 bytes  uint64 TraceID
//	off 32  span    8 bytes  uint64 SpanID
//	off 40  flags   1 byte   TraceFlags
//
// Bodies pack task IDs, counts, slots, and routes as varints (zigzag for
// signed values, uvarint for lengths) and float64s as 8-byte LE IEEE-754
// bits. Maps are encoded with keys in ascending order, so encoding is
// canonical: the same Message always produces the same bytes, which is what
// makes the committed golden corpus a byte-stability oracle.
//
// Nil semantics mirror the gob oracle exactly (proven by the differential
// suite): zero-length slices decode to nil (gob omits empty slices), while
// maps keep the nil/empty distinction — map counts are biased by one on the
// wire (0 = nil map, n+1 = map with n entries).
//
// Decoding is hardened: every read is bounds-checked, collection lengths
// are validated against the remaining frame bytes before any allocation,
// and malformed input of any shape returns an error — never a panic.

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"slices"
)

// Binary frame constants.
const (
	binaryMagic0 = 'v'
	binaryMagic1 = 'c'
	// BinaryVersion is the wire-format version stamped into every frame.
	// Decoders reject frames from other versions; see docs/WIRE.md for the
	// compatibility policy. v2 added KindGossipDelta (shard federation);
	// v3 added KindShardRequests and KindSnapshot (multi-node federation).
	BinaryVersion = 3
	// binaryHeaderLen is the fixed envelope header inside every frame.
	binaryHeaderLen = 41
	// MaxFrameLen bounds the length prefix a decoder honors. Protocol
	// messages are tiny (tens to a few thousand bytes); anything near this
	// limit is hostile or corrupt, and refusing it caps the memory an
	// adversarial stream can make a decoder allocate.
	MaxFrameLen = 1 << 20
)

// Decode error taxonomy. All are returned wrapped in a "wire: decode"
// context; none of them ever surfaces as a panic.
var (
	// ErrFrameTooLarge reports a length prefix above MaxFrameLen.
	ErrFrameTooLarge = errors.New("frame length exceeds MaxFrameLen")
	errShortFrame    = errors.New("frame shorter than fixed header")
	errBadMagic      = errors.New("bad frame magic")
	errTruncated     = errors.New("truncated frame")
	errTrailing      = errors.New("trailing bytes after payload")
	errVarint        = errors.New("malformed varint")
	errLength        = errors.New("collection length exceeds frame")
)

// BinaryCodec encodes and decodes Messages in the binary frame format over
// a byte stream. Encode and DecodeInto reuse per-codec scratch buffers, so
// a warm codec runs allocation-free in steady state; like the gob Codec,
// one codec must not be shared by concurrent writers or concurrent readers.
type BinaryCodec struct {
	w io.Writer
	r io.Reader

	enc  []byte // encode scratch: the whole outgoing frame
	keys []int  // encode scratch: sorted map keys for canonical order
	rbuf []byte // decode scratch: the incoming frame
	lenb [4]byte
}

// NewBinaryCodec wraps a stream. For a bidirectional connection pass the
// same net.Conn as both reader and writer.
func NewBinaryCodec(r io.Reader, w io.Writer) *BinaryCodec {
	return &BinaryCodec{r: r, w: w}
}

// Encode writes one message as a single length-prefixed frame.
func (c *BinaryCodec) Encode(m *Message) error {
	if err := m.Validate(); err != nil {
		return err
	}
	buf, keys, err := appendFrame(c.enc[:0], m, c.keys)
	c.keys = keys
	if err != nil {
		return err
	}
	c.enc = buf
	_, err = c.w.Write(buf)
	return err
}

// Decode reads one message, always into fresh storage: the result does not
// alias codec scratch or any previously decoded message.
func (c *BinaryCodec) Decode() (*Message, error) {
	m := new(Message)
	if err := c.DecodeInto(m); err != nil {
		return nil, err
	}
	return m, nil
}

// DecodeInto reads one message into m, reusing whatever payload storage m
// already carries (payload structs, maps, slice capacity) when the incoming
// kind matches. Decoding the same kind repeatedly into one message is
// allocation-free in steady state. The previous contents of m — including
// maps and slices other references may alias — are overwritten.
func (c *BinaryCodec) DecodeInto(m *Message) error {
	frame, err := c.readFrame()
	if err != nil {
		return err
	}
	if err := parseFrame(frame, m); err != nil {
		return fmt.Errorf("wire: decode: %w", err)
	}
	return nil
}

// readFrame reads one length-prefixed frame into the codec's scratch. A
// clean EOF at a frame boundary surfaces as io.EOF; EOF mid-frame is an
// unexpected-EOF error.
func (c *BinaryCodec) readFrame() ([]byte, error) {
	if _, err := io.ReadFull(c.r, c.lenb[:]); err != nil {
		if err == io.EOF {
			return nil, io.EOF
		}
		return nil, fmt.Errorf("wire: decode: reading frame length: %w", err)
	}
	n := binary.LittleEndian.Uint32(c.lenb[:])
	if n < binaryHeaderLen {
		return nil, fmt.Errorf("wire: decode: %w (%d bytes)", errShortFrame, n)
	}
	if n > MaxFrameLen {
		return nil, fmt.Errorf("wire: decode: %w (%d bytes)", ErrFrameTooLarge, n)
	}
	if cap(c.rbuf) < int(n) {
		c.rbuf = make([]byte, n)
	}
	buf := c.rbuf[:n]
	if _, err := io.ReadFull(c.r, buf); err != nil {
		return nil, fmt.Errorf("wire: decode: reading frame body: %w", err)
	}
	return buf, nil
}

// ReadRawFrame reads one length-prefixed frame from r and returns the
// complete encoded bytes, including the 4-byte length prefix — exactly what
// a relay writes verbatim to another stream. The front-door router uses it
// to capture an agent's Hello, decode it for routing, and replay the
// original bytes to the owning shard without re-encoding.
func ReadRawFrame(r io.Reader) ([]byte, error) {
	var lenb [4]byte
	if _, err := io.ReadFull(r, lenb[:]); err != nil {
		if err == io.EOF {
			return nil, io.EOF
		}
		return nil, fmt.Errorf("wire: decode: reading frame length: %w", err)
	}
	n := binary.LittleEndian.Uint32(lenb[:])
	if n < binaryHeaderLen {
		return nil, fmt.Errorf("wire: decode: %w (%d bytes)", errShortFrame, n)
	}
	if n > MaxFrameLen {
		return nil, fmt.Errorf("wire: decode: %w (%d bytes)", ErrFrameTooLarge, n)
	}
	buf := make([]byte, 4+int(n))
	copy(buf, lenb[:])
	if _, err := io.ReadFull(r, buf[4:]); err != nil {
		return nil, fmt.Errorf("wire: decode: reading frame body: %w", err)
	}
	return buf, nil
}

// DecodeRawFrame decodes a frame captured by ReadRawFrame (length prefix
// included) into a freshly allocated Message.
func DecodeRawFrame(raw []byte) (*Message, error) {
	if len(raw) < 4+binaryHeaderLen {
		return nil, fmt.Errorf("wire: decode: %w (%d bytes)", errShortFrame, len(raw))
	}
	m := new(Message)
	if err := parseFrame(raw[4:], m); err != nil {
		return nil, fmt.Errorf("wire: decode: %w", err)
	}
	return m, nil
}

// AppendFrame appends m encoded as one length-prefixed binary frame to dst
// and returns the extended slice. It is the allocation-friendly building
// block the mux uses to pre-encode frames into per-channel queues.
func AppendFrame(dst []byte, m *Message) ([]byte, error) {
	if err := m.Validate(); err != nil {
		return dst, err
	}
	out, _, err := appendFrame(dst, m, nil)
	return out, err
}

// appendFrame appends the length prefix, fixed header, and body. keys is
// the caller's reusable scratch for canonical map-key ordering; the
// (possibly grown) scratch is returned for reuse.
func appendFrame(dst []byte, m *Message, keys []int) ([]byte, []int, error) {
	base := len(dst)
	dst = append(dst, 0, 0, 0, 0) // length prefix, patched below
	dst = append(dst, binaryMagic0, binaryMagic1, BinaryVersion, byte(m.Kind))
	dst = binary.LittleEndian.AppendUint64(dst, m.Seq)
	dst = binary.LittleEndian.AppendUint32(dst, m.Epoch)
	dst = binary.LittleEndian.AppendUint64(dst, uint64(int64(m.From)))
	dst = binary.LittleEndian.AppendUint64(dst, m.TraceID)
	dst = binary.LittleEndian.AppendUint64(dst, m.SpanID)
	dst = append(dst, m.TraceFlags)
	var err error
	dst, keys, err = appendBody(dst, m, keys)
	if err != nil {
		return dst[:base], keys, err
	}
	n := len(dst) - base - 4
	if n > MaxFrameLen {
		return dst[:base], keys, fmt.Errorf("wire: encode: %w (%d bytes)", ErrFrameTooLarge, n)
	}
	binary.LittleEndian.PutUint32(dst[base:], uint32(n))
	return dst, keys, nil
}

func appendBool(dst []byte, b bool) []byte {
	if b {
		return append(dst, 1)
	}
	return append(dst, 0)
}

func appendFloat(dst []byte, f float64) []byte {
	return binary.LittleEndian.AppendUint64(dst, math.Float64bits(f))
}

func appendIntSlice(dst []byte, s []int) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	for _, v := range s {
		dst = binary.AppendVarint(dst, int64(v))
	}
	return dst
}

// appendBody encodes the kind-specific payload. Map entries are written in
// ascending key order so the encoding is canonical.
func appendBody(dst []byte, m *Message, keys []int) ([]byte, []int, error) {
	switch m.Kind {
	case KindHello:
		dst = binary.AppendVarint(dst, int64(m.Hello.User))
		dst = appendBool(dst, m.Hello.Resume)
	case KindInit:
		in := m.Init
		dst = binary.AppendVarint(dst, int64(in.User))
		dst = binary.AppendVarint(dst, int64(in.CurrentRoute))
		dst = binary.AppendUvarint(dst, uint64(len(in.Routes)))
		for i := range in.Routes {
			r := &in.Routes[i]
			dst = appendIntSlice(dst, r.Tasks)
			dst = appendFloat(dst, r.DetourCost)
			dst = appendFloat(dst, r.CongestionCost)
		}
		if in.Tasks == nil {
			dst = append(dst, 0)
		} else {
			keys = keys[:0]
			for k := range in.Tasks {
				keys = append(keys, k)
			}
			slices.Sort(keys)
			dst = binary.AppendUvarint(dst, uint64(len(keys))+1)
			for _, k := range keys {
				p := in.Tasks[k]
				dst = binary.AppendVarint(dst, int64(k))
				dst = appendFloat(dst, p.A)
				dst = appendFloat(dst, p.Mu)
			}
		}
	case KindSlotInfo:
		si := m.SlotInfo
		dst = binary.AppendVarint(dst, int64(si.Slot))
		if si.Counts == nil {
			dst = append(dst, 0)
		} else {
			keys = keys[:0]
			for k := range si.Counts {
				keys = append(keys, k)
			}
			slices.Sort(keys)
			dst = binary.AppendUvarint(dst, uint64(len(keys))+1)
			for _, k := range keys {
				dst = binary.AppendVarint(dst, int64(k))
				dst = binary.AppendVarint(dst, int64(si.Counts[k]))
			}
		}
	case KindRequest:
		r := m.Request
		dst = binary.AppendVarint(dst, int64(r.Slot))
		dst = appendBool(dst, r.HasUpdate)
		dst = binary.AppendVarint(dst, int64(r.Route))
		dst = appendFloat(dst, r.Tau)
		dst = appendIntSlice(dst, r.B)
	case KindGrant:
		dst = binary.AppendVarint(dst, int64(m.Grant.Slot))
	case KindDecision:
		dst = binary.AppendVarint(dst, int64(m.Decision.Slot))
		dst = binary.AppendVarint(dst, int64(m.Decision.Route))
	case KindTerminate:
		dst = binary.AppendVarint(dst, int64(m.Terminate.Slot))
	case KindGossipDelta:
		g := m.GossipDelta
		dst = binary.AppendVarint(dst, int64(g.Shard))
		dst = binary.AppendVarint(dst, int64(g.Epoch))
		if g.Counts == nil {
			dst = append(dst, 0)
		} else {
			keys = keys[:0]
			for k := range g.Counts {
				keys = append(keys, k)
			}
			slices.Sort(keys)
			dst = binary.AppendUvarint(dst, uint64(len(keys))+1)
			for _, k := range keys {
				dst = binary.AppendVarint(dst, int64(k))
				dst = binary.AppendVarint(dst, int64(g.Counts[k]))
			}
		}
	case KindShardRequests:
		sr := m.ShardRequests
		dst = binary.AppendVarint(dst, int64(sr.Shard))
		dst = binary.AppendVarint(dst, int64(sr.Slot))
		dst = appendBool(dst, sr.Terminating)
		dst = binary.AppendUvarint(dst, uint64(len(sr.Reqs)))
		for i := range sr.Reqs {
			q := &sr.Reqs[i]
			dst = binary.AppendVarint(dst, int64(q.User))
			dst = binary.AppendVarint(dst, int64(q.Route))
			dst = appendFloat(dst, q.Tau)
			dst = appendIntSlice(dst, q.B)
		}
	case KindSnapshot:
		sn := m.Snapshot
		dst = binary.AppendVarint(dst, int64(sn.Shard))
		dst = binary.AppendVarint(dst, int64(sn.Round))
		dst = appendIntSlice(dst, sn.Epochs)
		dst = appendIntSlice(dst, sn.Counts)
		dst = binary.AppendUvarint(dst, uint64(len(sn.Contrib)))
		for _, row := range sn.Contrib {
			dst = appendIntSlice(dst, row)
		}
	default:
		return dst, keys, fmt.Errorf("wire: encode: unknown kind %d", m.Kind)
	}
	return dst, keys, nil
}

// frameReader is a bounds-checked cursor over one frame's body.
type frameReader struct {
	b []byte
}

func (r *frameReader) uvarint() (uint64, error) {
	v, n := binary.Uvarint(r.b)
	if n <= 0 {
		return 0, errVarint
	}
	r.b = r.b[n:]
	return v, nil
}

func (r *frameReader) varint() (int64, error) {
	v, n := binary.Varint(r.b)
	if n <= 0 {
		return 0, errVarint
	}
	r.b = r.b[n:]
	return v, nil
}

func (r *frameReader) float() (float64, error) {
	if len(r.b) < 8 {
		return 0, errTruncated
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(r.b))
	r.b = r.b[8:]
	return v, nil
}

func (r *frameReader) bool() (bool, error) {
	if len(r.b) < 1 {
		return false, errTruncated
	}
	v := r.b[0]
	r.b = r.b[1:]
	return v != 0, nil
}

// length reads a collection length and validates it against the bytes left
// in the frame (minElem is the smallest possible encoded element), so a
// hostile length prefix can never force a large allocation.
func (r *frameReader) length(minElem int) (int, error) {
	v, err := r.uvarint()
	if err != nil {
		return 0, err
	}
	if v > uint64(len(r.b)/minElem) {
		return 0, errLength
	}
	return int(v), nil
}

// mapLength reads a biased map count: 0 means a nil map (isNil true), n+1
// means n entries. Like length, the entry count is validated against the
// remaining frame bytes before the caller allocates anything.
func (r *frameReader) mapLength(minElem int) (n int, isNil bool, err error) {
	v, err := r.uvarint()
	if err != nil {
		return 0, false, err
	}
	if v == 0 {
		return 0, true, nil
	}
	v--
	if v > uint64(len(r.b)/minElem) {
		return 0, false, errLength
	}
	return int(v), false, nil
}

// intSlice decodes a varint-packed []int, reusing old's capacity. A zero
// length decodes to nil, matching what a gob round trip produces for empty
// slices.
func (r *frameReader) intSlice(old []int) ([]int, error) {
	n, err := r.length(1)
	if err != nil {
		return nil, err
	}
	if n == 0 {
		return nil, nil
	}
	s := old[:0]
	for i := 0; i < n; i++ {
		v, err := r.varint()
		if err != nil {
			return nil, err
		}
		s = append(s, int(v))
	}
	return s, nil
}

// parseFrame decodes one frame (header + body, no length prefix) into m,
// reusing m's existing payload storage where the kinds line up.
func parseFrame(frame []byte, m *Message) error {
	if len(frame) < binaryHeaderLen {
		return errShortFrame
	}
	if frame[0] != binaryMagic0 || frame[1] != binaryMagic1 {
		return errBadMagic
	}
	if frame[2] != BinaryVersion {
		return fmt.Errorf("unsupported frame version %d (want %d)", frame[2], BinaryVersion)
	}
	kind := Kind(frame[3])
	old := *m
	*m = Message{
		Kind:       kind,
		Seq:        binary.LittleEndian.Uint64(frame[4:]),
		Epoch:      binary.LittleEndian.Uint32(frame[12:]),
		From:       int(int64(binary.LittleEndian.Uint64(frame[16:]))),
		TraceID:    binary.LittleEndian.Uint64(frame[24:]),
		SpanID:     binary.LittleEndian.Uint64(frame[32:]),
		TraceFlags: frame[40],
	}
	r := frameReader{b: frame[binaryHeaderLen:]}
	var err error
	switch kind {
	case KindHello:
		err = parseHello(&r, m, old.Hello)
	case KindInit:
		err = parseInit(&r, m, old.Init)
	case KindSlotInfo:
		err = parseSlotInfo(&r, m, old.SlotInfo)
	case KindRequest:
		err = parseRequest(&r, m, old.Request)
	case KindGrant:
		err = parseGrant(&r, m, old.Grant)
	case KindDecision:
		err = parseDecision(&r, m, old.Decision)
	case KindTerminate:
		err = parseTerminate(&r, m, old.Terminate)
	case KindGossipDelta:
		err = parseGossipDelta(&r, m, old.GossipDelta)
	case KindShardRequests:
		err = parseShardRequests(&r, m, old.ShardRequests)
	case KindSnapshot:
		err = parseSnapshot(&r, m, old.Snapshot)
	default:
		return fmt.Errorf("unknown kind %d", frame[3])
	}
	if err != nil {
		return err
	}
	if len(r.b) != 0 {
		return errTrailing
	}
	return nil
}

func parseHello(r *frameReader, m *Message, old *Hello) error {
	user, err := r.varint()
	if err != nil {
		return err
	}
	resume, err := r.bool()
	if err != nil {
		return err
	}
	if old == nil {
		old = new(Hello)
	}
	*old = Hello{User: int(user), Resume: resume}
	m.Hello = old
	return nil
}

func parseInit(r *frameReader, m *Message, old *Init) error {
	if old == nil {
		old = new(Init)
	}
	user, err := r.varint()
	if err != nil {
		return err
	}
	current, err := r.varint()
	if err != nil {
		return err
	}
	// A route encodes at least a task count (1 byte) plus two float64s.
	nr, err := r.length(17)
	if err != nil {
		return err
	}
	routes := old.Routes
	if nr == 0 {
		routes = nil
	} else {
		if cap(routes) >= nr {
			routes = routes[:nr]
		} else {
			routes = make([]RouteInfo, nr)
		}
		for i := range routes {
			tasks, err := r.intSlice(routes[i].Tasks)
			if err != nil {
				return err
			}
			d, err := r.float()
			if err != nil {
				return err
			}
			cg, err := r.float()
			if err != nil {
				return err
			}
			routes[i] = RouteInfo{Tasks: tasks, DetourCost: d, CongestionCost: cg}
		}
	}
	// A task-param entry is at least a 1-byte key plus two float64s.
	nt, nilMap, err := r.mapLength(17)
	if err != nil {
		return err
	}
	params := old.Tasks
	if nilMap {
		params = nil
	} else {
		if params == nil {
			params = make(map[int]TaskParam, nt)
		} else {
			clear(params)
		}
		for i := 0; i < nt; i++ {
			k, err := r.varint()
			if err != nil {
				return err
			}
			a, err := r.float()
			if err != nil {
				return err
			}
			mu, err := r.float()
			if err != nil {
				return err
			}
			params[int(k)] = TaskParam{A: a, Mu: mu}
		}
	}
	*old = Init{User: int(user), Routes: routes, Tasks: params, CurrentRoute: int(current)}
	m.Init = old
	return nil
}

func parseSlotInfo(r *frameReader, m *Message, old *SlotInfo) error {
	if old == nil {
		old = new(SlotInfo)
	}
	slot, err := r.varint()
	if err != nil {
		return err
	}
	// A counts entry is at least a 1-byte key plus a 1-byte value.
	n, nilMap, err := r.mapLength(2)
	if err != nil {
		return err
	}
	counts := old.Counts
	if nilMap {
		counts = nil
	} else {
		if counts == nil {
			counts = make(map[int]int, n)
		} else {
			clear(counts)
		}
		for i := 0; i < n; i++ {
			k, err := r.varint()
			if err != nil {
				return err
			}
			v, err := r.varint()
			if err != nil {
				return err
			}
			counts[int(k)] = int(v)
		}
	}
	*old = SlotInfo{Slot: int(slot), Counts: counts}
	m.SlotInfo = old
	return nil
}

func parseRequest(r *frameReader, m *Message, old *Request) error {
	if old == nil {
		old = new(Request)
	}
	slot, err := r.varint()
	if err != nil {
		return err
	}
	has, err := r.bool()
	if err != nil {
		return err
	}
	route, err := r.varint()
	if err != nil {
		return err
	}
	tau, err := r.float()
	if err != nil {
		return err
	}
	b, err := r.intSlice(old.B)
	if err != nil {
		return err
	}
	*old = Request{Slot: int(slot), HasUpdate: has, Route: int(route), Tau: tau, B: b}
	m.Request = old
	return nil
}

func parseGrant(r *frameReader, m *Message, old *Grant) error {
	slot, err := r.varint()
	if err != nil {
		return err
	}
	if old == nil {
		old = new(Grant)
	}
	*old = Grant{Slot: int(slot)}
	m.Grant = old
	return nil
}

func parseDecision(r *frameReader, m *Message, old *Decision) error {
	slot, err := r.varint()
	if err != nil {
		return err
	}
	route, err := r.varint()
	if err != nil {
		return err
	}
	if old == nil {
		old = new(Decision)
	}
	*old = Decision{Slot: int(slot), Route: int(route)}
	m.Decision = old
	return nil
}

func parseTerminate(r *frameReader, m *Message, old *Terminate) error {
	slot, err := r.varint()
	if err != nil {
		return err
	}
	if old == nil {
		old = new(Terminate)
	}
	*old = Terminate{Slot: int(slot)}
	m.Terminate = old
	return nil
}

func parseGossipDelta(r *frameReader, m *Message, old *GossipDelta) error {
	if old == nil {
		old = new(GossipDelta)
	}
	shard, err := r.varint()
	if err != nil {
		return err
	}
	epoch, err := r.varint()
	if err != nil {
		return err
	}
	// A counts entry is at least a 1-byte key plus a 1-byte value.
	n, nilMap, err := r.mapLength(2)
	if err != nil {
		return err
	}
	counts := old.Counts
	if nilMap {
		counts = nil
	} else {
		if counts == nil {
			counts = make(map[int]int, n)
		} else {
			clear(counts)
		}
		for i := 0; i < n; i++ {
			k, err := r.varint()
			if err != nil {
				return err
			}
			v, err := r.varint()
			if err != nil {
				return err
			}
			counts[int(k)] = int(v)
		}
	}
	*old = GossipDelta{Shard: int(shard), Epoch: int(epoch), Counts: counts}
	m.GossipDelta = old
	return nil
}

func parseShardRequests(r *frameReader, m *Message, old *ShardRequests) error {
	if old == nil {
		old = new(ShardRequests)
	}
	shard, err := r.varint()
	if err != nil {
		return err
	}
	slot, err := r.varint()
	if err != nil {
		return err
	}
	term, err := r.bool()
	if err != nil {
		return err
	}
	// A request encodes at least user, route, a float64 τ, and a B length.
	n, err := r.length(11)
	if err != nil {
		return err
	}
	reqs := old.Reqs
	if n == 0 {
		reqs = nil
	} else {
		if cap(reqs) >= n {
			reqs = reqs[:n]
		} else {
			reqs = make([]ShardRequest, n)
		}
		for i := range reqs {
			user, err := r.varint()
			if err != nil {
				return err
			}
			route, err := r.varint()
			if err != nil {
				return err
			}
			tau, err := r.float()
			if err != nil {
				return err
			}
			b, err := r.intSlice(reqs[i].B)
			if err != nil {
				return err
			}
			reqs[i] = ShardRequest{User: int(user), Route: int(route), Tau: tau, B: b}
		}
	}
	*old = ShardRequests{Shard: int(shard), Slot: int(slot), Terminating: term, Reqs: reqs}
	m.ShardRequests = old
	return nil
}

func parseSnapshot(r *frameReader, m *Message, old *Snapshot) error {
	if old == nil {
		old = new(Snapshot)
	}
	shard, err := r.varint()
	if err != nil {
		return err
	}
	round, err := r.varint()
	if err != nil {
		return err
	}
	epochs, err := r.intSlice(old.Epochs)
	if err != nil {
		return err
	}
	counts, err := r.intSlice(old.Counts)
	if err != nil {
		return err
	}
	// A contribution row encodes at least its length byte.
	n, err := r.length(1)
	if err != nil {
		return err
	}
	contrib := old.Contrib
	if n == 0 {
		contrib = nil
	} else {
		if cap(contrib) >= n {
			contrib = contrib[:n]
		} else {
			contrib = make([][]int, n)
		}
		for i := range contrib {
			row, err := r.intSlice(contrib[i])
			if err != nil {
				return err
			}
			contrib[i] = row
		}
	}
	*old = Snapshot{Shard: int(shard), Round: int(round), Epochs: epochs, Counts: counts, Contrib: contrib}
	m.Snapshot = old
	return nil
}
