package roadnet

import (
	"container/heap"
	"fmt"
	"math"
)

// Weight selects the edge cost used by the shortest-path routines.
type Weight int

const (
	// ByLength weights edges by their length in meters (used for detour
	// distance h(r), which the paper defines against the shortest route).
	ByLength Weight = iota
	// ByTime weights edges by expected travel time (length/speed).
	ByTime
)

func (w Weight) cost(e Edge) float64 {
	if w == ByTime {
		return e.TravelTime()
	}
	return e.Length
}

// pqItem is a priority-queue entry for Dijkstra.
type pqItem struct {
	node NodeID
	dist float64
}

// pq is a binary min-heap over pqItem.
type pq []pqItem

func (h pq) Len() int            { return len(h) }
func (h pq) Less(i, j int) bool  { return h[i].dist < h[j].dist }
func (h pq) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *pq) Push(x interface{}) { *h = append(*h, x.(pqItem)) }
func (h *pq) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// ShortestPath returns the minimum-cost path from src to dst under the given
// weight, using binary-heap Dijkstra with lazy deletion. It returns an error
// if dst is unreachable. banned edges/nodes (may be nil) are skipped — Yen's
// algorithm uses this to force spur paths off the root.
func (g *Graph) ShortestPath(src, dst NodeID, w Weight) (Path, error) {
	return g.shortestPathBanned(src, dst, w, nil, nil)
}

func (g *Graph) shortestPathBanned(src, dst NodeID, w Weight, bannedEdges map[EdgeID]bool, bannedNodes map[NodeID]bool) (Path, error) {
	n := g.NumNodes()
	if int(src) >= n || int(dst) >= n || src < 0 || dst < 0 {
		return Path{}, fmt.Errorf("roadnet: shortest path endpoints out of range: %d->%d", src, dst)
	}
	dist := make([]float64, n)
	prevEdge := make([]EdgeID, n)
	done := make([]bool, n)
	for i := range dist {
		dist[i] = math.Inf(1)
		prevEdge[i] = -1
	}
	dist[src] = 0
	h := &pq{{node: src, dist: 0}}
	for h.Len() > 0 {
		it := heap.Pop(h).(pqItem)
		u := it.node
		if done[u] || it.dist > dist[u] {
			continue
		}
		done[u] = true
		if u == dst {
			break
		}
		for _, eid := range g.out[u] {
			if bannedEdges != nil && bannedEdges[eid] {
				continue
			}
			e := g.Edges[eid]
			if bannedNodes != nil && bannedNodes[e.To] {
				continue
			}
			nd := dist[u] + w.cost(e)
			if nd < dist[e.To] {
				dist[e.To] = nd
				prevEdge[e.To] = eid
				heap.Push(h, pqItem{node: e.To, dist: nd})
			}
		}
	}
	if math.IsInf(dist[dst], 1) {
		return Path{}, fmt.Errorf("roadnet: node %d unreachable from %d", dst, src)
	}
	if src == dst {
		return Path{Nodes: []NodeID{src}}, nil
	}
	// Reconstruct edge sequence backwards.
	var rev []EdgeID
	for at := dst; at != src; {
		eid := prevEdge[at]
		rev = append(rev, eid)
		at = g.Edges[eid].From
	}
	edges := make([]EdgeID, len(rev))
	for i := range rev {
		edges[i] = rev[len(rev)-1-i]
	}
	return g.NewPath(edges)
}

// AllShortestDists runs Dijkstra from src and returns the distance to every
// node (Inf for unreachable) under the given weight.
func (g *Graph) AllShortestDists(src NodeID, w Weight) []float64 {
	n := g.NumNodes()
	dist := make([]float64, n)
	for i := range dist {
		dist[i] = math.Inf(1)
	}
	dist[src] = 0
	h := &pq{{node: src, dist: 0}}
	done := make([]bool, n)
	for h.Len() > 0 {
		it := heap.Pop(h).(pqItem)
		u := it.node
		if done[u] {
			continue
		}
		done[u] = true
		for _, eid := range g.out[u] {
			e := g.Edges[eid]
			if nd := dist[u] + w.cost(e); nd < dist[e.To] {
				dist[e.To] = nd
				heap.Push(h, pqItem{node: e.To, dist: nd})
			}
		}
	}
	return dist
}

// KShortestPaths returns up to k loopless shortest paths from src to dst in
// increasing cost order, using Yen's algorithm. This is the stand-in for the
// Google Maps API route recommendation of §5.1: the first path is the
// shortest route, and the alternatives are the next-best simple detours. It
// returns fewer than k paths when the graph does not contain that many
// simple paths. An error is returned only if no path exists at all.
func (g *Graph) KShortestPaths(src, dst NodeID, k int, w Weight) ([]Path, error) {
	if k <= 0 {
		return nil, nil
	}
	first, err := g.ShortestPath(src, dst, w)
	if err != nil {
		return nil, err
	}
	paths := []Path{first}
	if src == dst {
		return paths, nil
	}
	// Candidate pool: potential k-th shortest paths discovered from spurs.
	var candidates []Path
	costOf := func(p Path) float64 {
		if w == ByTime {
			return p.Time
		}
		return p.Length
	}
	seen := map[string]bool{pathKey(first): true}

	for len(paths) < k {
		prev := paths[len(paths)-1]
		// Spur from every node of the previous path except the last.
		for i := 0; i < len(prev.Edges); i++ {
			spurNode := prev.Nodes[i]
			rootEdges := prev.Edges[:i]

			bannedEdges := map[EdgeID]bool{}
			for _, p := range paths {
				if len(p.Edges) > i && edgesPrefixEqual(p.Edges, rootEdges) {
					bannedEdges[p.Edges[i]] = true
				}
			}
			bannedNodes := map[NodeID]bool{}
			for _, nd := range prev.Nodes[:i] {
				bannedNodes[nd] = true
			}

			spur, err := g.shortestPathBanned(spurNode, dst, w, bannedEdges, bannedNodes)
			if err != nil {
				continue
			}
			total := append(append([]EdgeID(nil), rootEdges...), spur.Edges...)
			cand, err := g.NewPath(total)
			if err != nil {
				continue
			}
			key := pathKey(cand)
			if seen[key] {
				continue
			}
			seen[key] = true
			candidates = append(candidates, cand)
		}
		if len(candidates) == 0 {
			break
		}
		// Extract the cheapest candidate.
		bi, bc := 0, costOf(candidates[0])
		for i := 1; i < len(candidates); i++ {
			if c := costOf(candidates[i]); c < bc {
				bi, bc = i, c
			}
		}
		paths = append(paths, candidates[bi])
		candidates = append(candidates[:bi], candidates[bi+1:]...)
	}
	return paths, nil
}

// edgesPrefixEqual reports whether p begins with the given prefix.
func edgesPrefixEqual(p, prefix []EdgeID) bool {
	if len(p) < len(prefix) {
		return false
	}
	for i := range prefix {
		if p[i] != prefix[i] {
			return false
		}
	}
	return true
}

// pathKey returns a canonical identity string for a path's edge sequence.
func pathKey(p Path) string {
	b := make([]byte, 0, len(p.Edges)*3)
	for _, e := range p.Edges {
		b = appendInt(b, int(e))
		b = append(b, ',')
	}
	return string(b)
}

func appendInt(b []byte, v int) []byte {
	if v == 0 {
		return append(b, '0')
	}
	if v < 0 {
		b = append(b, '-')
		v = -v
	}
	var tmp [20]byte
	i := len(tmp)
	for v > 0 {
		i--
		tmp[i] = byte('0' + v%10)
		v /= 10
	}
	return append(b, tmp[i:]...)
}

// IsSimple reports whether the path visits each node at most once.
func (p Path) IsSimple() bool {
	seen := make(map[NodeID]bool, len(p.Nodes))
	for _, n := range p.Nodes {
		if seen[n] {
			return false
		}
		seen[n] = true
	}
	return true
}
