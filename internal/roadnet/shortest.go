package roadnet

import (
	"container/heap"
	"math"
)

// Weight selects the edge cost used by the shortest-path routines.
type Weight int

const (
	// ByLength weights edges by their length in meters (used for detour
	// distance h(r), which the paper defines against the shortest route).
	ByLength Weight = iota
	// ByTime weights edges by expected travel time (length/speed).
	ByTime
)

func (w Weight) cost(e Edge) float64 {
	if w == ByTime {
		return e.TravelTime()
	}
	return e.Length
}

// pqItem is a priority-queue entry for the container/heap-based Dijkstras
// (one-shot table builds and the reference implementation; the query engine
// in search.go uses its own boxing-free heap).
type pqItem struct {
	node NodeID
	dist float64
}

// pq is a binary min-heap over pqItem.
type pq []pqItem

func (h pq) Len() int            { return len(h) }
func (h pq) Less(i, j int) bool  { return h[i].dist < h[j].dist }
func (h pq) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *pq) Push(x interface{}) { *h = append(*h, x.(pqItem)) }
func (h *pq) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// ShortestPath returns the minimum-cost path from src to dst under the given
// weight. Queries run on the routing engine: goal-directed A* with landmark
// lower bounds on graphs large enough to amortize the tables, plain Dijkstra
// below that, both over a pooled zero-reinit scratch and both returning
// bit-identical paths to the reference implementation (see SearchScratch for
// the canonical tie-breaking rule). It returns an error if dst is
// unreachable.
func (g *Graph) ShortestPath(src, dst NodeID, w Weight) (Path, error) {
	s, c := g.getScratch()
	defer g.putScratch(c, s)
	return s.ShortestPath(src, dst, w)
}

// shortestPathBanned is the engine search with banned edges/nodes (may be
// nil) skipped — Yen's algorithm uses this to force spur paths off the root.
func (g *Graph) shortestPathBanned(src, dst NodeID, w Weight, bannedEdges map[EdgeID]bool, bannedNodes map[NodeID]bool) (Path, error) {
	s, c := g.getScratch()
	defer g.putScratch(c, s)
	return s.shortestPath(src, dst, searchOpts{w: w, bannedEdges: bannedEdges, bannedNodes: bannedNodes})
}

// AllShortestDists runs Dijkstra from src and returns the distance to every
// node (Inf for unreachable) under the given weight.
func (g *Graph) AllShortestDists(src NodeID, w Weight) []float64 {
	n := g.NumNodes()
	dist := make([]float64, n)
	for i := range dist {
		dist[i] = math.Inf(1)
	}
	dist[src] = 0
	h := &pq{{node: src, dist: 0}}
	done := make([]bool, n)
	for h.Len() > 0 {
		it := heap.Pop(h).(pqItem)
		u := it.node
		if done[u] {
			continue
		}
		done[u] = true
		for _, eid := range g.out[u] {
			e := g.Edges[eid]
			if nd := dist[u] + w.cost(e); nd < dist[e.To] {
				dist[e.To] = nd
				heap.Push(h, pqItem{node: e.To, dist: nd})
			}
		}
	}
	return dist
}

// KShortestPaths returns up to k loopless shortest paths from src to dst in
// increasing cost order, using Yen's algorithm. This is the stand-in for the
// Google Maps API route recommendation of §5.1: the first path is the
// shortest route, and the alternatives are the next-best simple detours. It
// returns fewer than k paths when the graph does not contain that many
// simple paths. An error is returned only if no path exists at all.
func (g *Graph) KShortestPaths(src, dst NodeID, k int, w Weight) ([]Path, error) {
	if k <= 0 {
		return nil, nil
	}
	first, err := g.ShortestPath(src, dst, w)
	if err != nil {
		return nil, err
	}
	paths := []Path{first}
	if src == dst {
		return paths, nil
	}
	// Candidate pool: potential k-th shortest paths discovered from spurs.
	var candidates []Path
	costOf := func(p Path) float64 {
		if w == ByTime {
			return p.Time
		}
		return p.Length
	}
	var seen pathSet
	seen.Add(first.Edges)

	for len(paths) < k {
		prev := paths[len(paths)-1]
		// Spur from every node of the previous path except the last.
		for i := 0; i < len(prev.Edges); i++ {
			spurNode := prev.Nodes[i]
			rootEdges := prev.Edges[:i]

			bannedEdges := map[EdgeID]bool{}
			for _, p := range paths {
				if len(p.Edges) > i && edgesPrefixEqual(p.Edges, rootEdges) {
					bannedEdges[p.Edges[i]] = true
				}
			}
			bannedNodes := map[NodeID]bool{}
			for _, nd := range prev.Nodes[:i] {
				bannedNodes[nd] = true
			}

			spur, err := g.shortestPathBanned(spurNode, dst, w, bannedEdges, bannedNodes)
			if err != nil {
				continue
			}
			total := append(append([]EdgeID(nil), rootEdges...), spur.Edges...)
			cand, err := g.NewPath(total)
			if err != nil {
				continue
			}
			if !seen.Add(cand.Edges) {
				continue
			}
			candidates = append(candidates, cand)
		}
		if len(candidates) == 0 {
			break
		}
		// Extract the cheapest candidate.
		bi, bc := 0, costOf(candidates[0])
		for i := 1; i < len(candidates); i++ {
			if c := costOf(candidates[i]); c < bc {
				bi, bc = i, c
			}
		}
		paths = append(paths, candidates[bi])
		candidates = append(candidates[:bi], candidates[bi+1:]...)
	}
	return paths, nil
}

// edgesPrefixEqual reports whether p begins with the given prefix.
func edgesPrefixEqual(p, prefix []EdgeID) bool {
	if len(p) < len(prefix) {
		return false
	}
	for i := range prefix {
		if p[i] != prefix[i] {
			return false
		}
	}
	return true
}

// pathSet tracks distinct edge sequences without building a string key per
// path (the old pathKey allocated and formatted every edge ID). Sequences
// hash by FNV-1a over the raw IDs; a hash hit falls back to an exact
// edge-slice compare, so collisions cannot merge distinct paths. The zero
// value is ready to use.
type pathSet struct {
	m map[uint64][][]EdgeID
}

// hashEdges is FNV-1a over the edge IDs, allocation-free.
func hashEdges(edges []EdgeID) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, e := range edges {
		v := uint64(e)
		for i := 0; i < 8; i++ {
			h ^= v & 0xff
			h *= prime64
			v >>= 8
		}
	}
	return h
}

func edgesEqual(a, b []EdgeID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Has reports whether the exact edge sequence is present.
func (ps *pathSet) Has(edges []EdgeID) bool {
	for _, have := range ps.m[hashEdges(edges)] {
		if edgesEqual(have, edges) {
			return true
		}
	}
	return false
}

// Add inserts the edge sequence and reports whether it was new. The slice
// is retained; callers must not mutate it afterwards (path edge slices are
// immutable once built).
func (ps *pathSet) Add(edges []EdgeID) bool {
	h := hashEdges(edges)
	for _, have := range ps.m[h] {
		if edgesEqual(have, edges) {
			return false
		}
	}
	if ps.m == nil {
		ps.m = make(map[uint64][][]EdgeID)
	}
	ps.m[h] = append(ps.m[h], edges)
	return true
}

// IsSimple reports whether the path visits each node at most once.
func (p Path) IsSimple() bool {
	seen := make(map[NodeID]bool, len(p.Nodes))
	for _, n := range p.Nodes {
		if seen[n] {
			return false
		}
		seen[n] = true
	}
	return true
}
