package roadnet

import "sync"

// RouteKey identifies one route-recommendation computation: endpoints, the
// number of alternatives, and the penalization parameters.
type RouteKey struct {
	Src, Dst NodeID
	K        int
	Penalty  float64
	W        Weight
}

// routeCacheShards keeps lock contention low when many workers resolve
// routes concurrently; keys spread across shards by a cheap integer hash.
const routeCacheShards = 32

// routeEntry is one cache slot. ready is closed when paths/err are final;
// waiters block on it instead of recomputing (singleflight).
type routeEntry struct {
	ready chan struct{}
	paths []Path
	err   error
}

type routeCacheShard struct {
	mu sync.Mutex
	m  map[RouteKey]*routeEntry
}

// RouteCache memoizes route-recommendation results per (src, dst, k,
// penalty, weight) with singleflight semantics: concurrent requests for the
// same key perform the computation once, and everyone else waits for that
// result. It is safe for concurrent use. Entries are never evicted — the
// cache is scoped to one immutable graph view (scenario builds, trace
// generation), not to a long-lived mutating service.
type RouteCache struct {
	g      *Graph
	shards [routeCacheShards]routeCacheShard
}

// NewRouteCache returns an empty cache over g.
func NewRouteCache(g *Graph) *RouteCache {
	c := &RouteCache{g: g}
	for i := range c.shards {
		c.shards[i].m = make(map[RouteKey]*routeEntry)
	}
	return c
}

// Graph returns the graph the cache computes over.
func (c *RouteCache) Graph() *Graph { return c.g }

func (c *RouteCache) shardFor(k RouteKey) *routeCacheShard {
	// Fibonacci hash over the fields that actually vary between keys.
	h := uint64(k.Src)*0x9e3779b97f4a7c15 ^ uint64(k.Dst)*0xc2b2ae3d27d4eb4f ^ uint64(k.K)
	return &c.shards[(h>>32)%routeCacheShards]
}

// AlternativeRoutes returns the cached route set for the key, computing it
// via Graph.AlternativeRoutes on first request. The returned slice is shared
// by all callers and must be treated as immutable.
func (c *RouteCache) AlternativeRoutes(src, dst NodeID, k int, penalty float64) ([]Path, error) {
	key := RouteKey{Src: src, Dst: dst, K: k, Penalty: penalty, W: ByLength}
	sh := c.shardFor(key)
	sh.mu.Lock()
	if e, ok := sh.m[key]; ok {
		sh.mu.Unlock()
		select {
		case <-e.ready:
			// Already resolved: a plain hit.
			routeCacheHits.Inc()
		default:
			// Another goroutine is computing right now; piggyback on it.
			routeCacheWaits.Inc()
			<-e.ready
		}
		return e.paths, e.err
	}
	e := &routeEntry{ready: make(chan struct{})}
	sh.m[key] = e
	sh.mu.Unlock()
	routeCacheMisses.Inc()
	e.paths, e.err = c.g.AlternativeRoutes(src, dst, k, penalty)
	close(e.ready)
	return e.paths, e.err
}
