package roadnet

import (
	"math"
	"testing"

	"repro/internal/rng"
)

func TestCityKindString(t *testing.T) {
	if GridCity.String() != "grid" || RadialCity.String() != "radial" || HillCity.String() != "hill" {
		t.Error("CityKind.String wrong")
	}
	if CityKind(99).String() != "unknown" {
		t.Error("unknown CityKind.String wrong")
	}
}

func TestDefaultCityShapes(t *testing.T) {
	for _, kind := range []CityKind{GridCity, RadialCity, HillCity} {
		cfg := DefaultCity(kind)
		if cfg.Kind != kind {
			t.Errorf("DefaultCity(%v).Kind = %v", kind, cfg.Kind)
		}
		if cfg.FreeSpeed <= 0 {
			t.Errorf("%v: FreeSpeed = %v", kind, cfg.FreeSpeed)
		}
	}
}

func TestGenerateGridCounts(t *testing.T) {
	cfg := DefaultCity(GridCity)
	g := GenerateCity(cfg, rng.New(1))
	wantNodes := cfg.Rows * cfg.Cols
	if g.NumNodes() != wantNodes {
		t.Errorf("grid nodes = %d, want %d", g.NumNodes(), wantNodes)
	}
	// Bidirectional: 2 * (rows*(cols-1) + cols*(rows-1)).
	wantEdges := 2 * (cfg.Rows*(cfg.Cols-1) + cfg.Cols*(cfg.Rows-1))
	if g.NumEdges() != wantEdges {
		t.Errorf("grid edges = %d, want %d", g.NumEdges(), wantEdges)
	}
}

func TestGenerateRadialCounts(t *testing.T) {
	cfg := DefaultCity(RadialCity)
	g := GenerateCity(cfg, rng.New(2))
	wantNodes := 1 + cfg.Rings*cfg.Spokes
	if g.NumNodes() != wantNodes {
		t.Errorf("radial nodes = %d, want %d", g.NumNodes(), wantNodes)
	}
}

func TestGeneratedCitiesStronglyConnected(t *testing.T) {
	for _, kind := range []CityKind{GridCity, RadialCity, HillCity} {
		g := GenerateCity(DefaultCity(kind), rng.New(3))
		dist := g.AllShortestDists(0, ByLength)
		for i, d := range dist {
			if math.IsInf(d, 1) {
				t.Errorf("%v: node %d unreachable", kind, i)
				break
			}
		}
	}
}

func TestGeneratedSpeedsValid(t *testing.T) {
	for _, kind := range []CityKind{GridCity, RadialCity, HillCity} {
		g := GenerateCity(DefaultCity(kind), rng.New(4))
		for _, e := range g.Edges {
			if e.Speed <= 0 || e.FreeSpeed <= 0 {
				t.Fatalf("%v: invalid speeds on edge %d: %v/%v", kind, e.ID, e.Speed, e.FreeSpeed)
			}
			if e.Speed > e.FreeSpeed*1.21 { // expressways allow up to 1.2x
				t.Fatalf("%v: speed above free-flow: %v > %v", kind, e.Speed, e.FreeSpeed)
			}
		}
	}
}

func TestGenerationDeterministic(t *testing.T) {
	for _, kind := range []CityKind{GridCity, RadialCity, HillCity} {
		g1 := GenerateCity(DefaultCity(kind), rng.New(7))
		g2 := GenerateCity(DefaultCity(kind), rng.New(7))
		if g1.NumNodes() != g2.NumNodes() || g1.NumEdges() != g2.NumEdges() {
			t.Fatalf("%v: nondeterministic sizes", kind)
		}
		for i := range g1.Edges {
			if g1.Edges[i].Speed != g2.Edges[i].Speed {
				t.Fatalf("%v: nondeterministic speeds at edge %d", kind, i)
			}
		}
		for i := range g1.Nodes {
			if g1.Nodes[i].Pos != g2.Nodes[i].Pos {
				t.Fatalf("%v: nondeterministic positions at node %d", kind, i)
			}
		}
	}
}

func TestDowntownMoreCongested(t *testing.T) {
	// In the grid city the CBD bias should make central edges slower than
	// peripheral ones on average.
	cfg := DefaultCity(GridCity)
	g := GenerateCity(cfg, rng.New(11))
	center := g.Pos(g.NearestNode(g.Pos(0).Lerp(g.Pos(NodeID(g.NumNodes()-1)), 0.5)))
	var cSum, cN, pSum, pN float64
	for _, e := range g.Edges {
		mid := g.Pos(e.From).Lerp(g.Pos(e.To), 0.5)
		d := mid.Dist(center)
		if d < 3*cfg.BlockLen {
			cSum += e.CongestionFactor()
			cN++
		} else if d > 5*cfg.BlockLen {
			pSum += e.CongestionFactor()
			pN++
		}
	}
	if cN == 0 || pN == 0 {
		t.Skip("classification produced empty buckets")
	}
	if cSum/cN >= pSum/pN {
		t.Errorf("central congestion factor %v >= peripheral %v", cSum/cN, pSum/pN)
	}
}
