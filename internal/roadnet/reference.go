package roadnet

import (
	"container/heap"
	"fmt"
	"math"
)

// This file freezes the pre-engine implementations of the routing queries:
// one-shot Dijkstra with freshly allocated label arrays and the map-based
// penalized-alternatives loop. They are kept verbatim (plus the canonical
// tie-breaking rule, see below) for two jobs:
//
//   - differential oracle: the property/fuzz tests assert the goal-directed
//     engine returns bit-identical paths to these on every query mode;
//   - benchmark baseline: BENCH_routing.json reports engine speedups
//     against these, so the numbers measure real algorithmic gains rather
//     than drift in the comparison code.
//
// The only intentional change from the seed is the equality branch on
// relaxation (nd == dist[v] && eid < prevEdge[v] → prevEdge[v] = eid).
// Without it, the predecessor chosen among float-equal shortest paths
// depends on heap settle order, which differs between plain Dijkstra and
// A* — bit-identity would then be unachievable by ANY correct goal-directed
// search. The rule canonicalizes the choice (lowest optimal predecessor
// edge ID wins) without changing path costs, and is applied identically in
// the engine (search.go).

// ReferenceShortestPath is the frozen baseline shortest path: binary-heap
// Dijkstra with lazy deletion, O(|V|) fresh label arrays per call, no
// goal-direction. Semantics match Graph.ShortestPath exactly.
func ReferenceShortestPath(g *Graph, src, dst NodeID, w Weight) (Path, error) {
	return referenceShortestPathBanned(g, src, dst, w, nil, nil)
}

func referenceShortestPathBanned(g *Graph, src, dst NodeID, w Weight, bannedEdges map[EdgeID]bool, bannedNodes map[NodeID]bool) (Path, error) {
	n := g.NumNodes()
	if int(src) >= n || int(dst) >= n || src < 0 || dst < 0 {
		return Path{}, fmt.Errorf("roadnet: shortest path endpoints out of range: %d->%d", src, dst)
	}
	dist := make([]float64, n)
	prevEdge := make([]EdgeID, n)
	done := make([]bool, n)
	for i := range dist {
		dist[i] = math.Inf(1)
		prevEdge[i] = -1
	}
	dist[src] = 0
	h := &pq{{node: src, dist: 0}}
	for h.Len() > 0 {
		it := heap.Pop(h).(pqItem)
		u := it.node
		if done[u] || it.dist > dist[u] {
			continue
		}
		done[u] = true
		if u == dst {
			break
		}
		for _, eid := range g.out[u] {
			if bannedEdges != nil && bannedEdges[eid] {
				continue
			}
			e := g.Edges[eid]
			if bannedNodes != nil && bannedNodes[e.To] {
				continue
			}
			nd := dist[u] + w.cost(e)
			if nd < dist[e.To] {
				dist[e.To] = nd
				prevEdge[e.To] = eid
				heap.Push(h, pqItem{node: e.To, dist: nd})
			} else if nd == dist[e.To] && eid < prevEdge[e.To] {
				prevEdge[e.To] = eid
			}
		}
	}
	if math.IsInf(dist[dst], 1) {
		return Path{}, fmt.Errorf("roadnet: node %d unreachable from %d", dst, src)
	}
	if src == dst {
		return Path{Nodes: []NodeID{src}}, nil
	}
	// Reconstruct edge sequence backwards.
	var rev []EdgeID
	for at := dst; at != src; {
		eid := prevEdge[at]
		rev = append(rev, eid)
		at = g.Edges[eid].From
	}
	edges := make([]EdgeID, len(rev))
	for i := range rev {
		edges[i] = rev[len(rev)-1-i]
	}
	return g.NewPath(edges)
}

// referenceShortestPathPenalized is the frozen Dijkstra over
// cost(e) = Length·(1 + penalty·uses[e]).
func referenceShortestPathPenalized(g *Graph, src, dst NodeID, uses map[EdgeID]int, penalty float64) (Path, error) {
	n := g.NumNodes()
	dist := make([]float64, n)
	prevEdge := make([]EdgeID, n)
	done := make([]bool, n)
	for i := range dist {
		dist[i] = math.Inf(1)
		prevEdge[i] = -1
	}
	dist[src] = 0
	h := &pq{{node: src, dist: 0}}
	for h.Len() > 0 {
		it := heap.Pop(h).(pqItem)
		u := it.node
		if done[u] || it.dist > dist[u] {
			continue
		}
		done[u] = true
		if u == dst {
			break
		}
		for _, eid := range g.out[u] {
			e := g.Edges[eid]
			cost := e.Length * (1 + penalty*float64(uses[eid]))
			nd := dist[u] + cost
			if nd < dist[e.To] {
				dist[e.To] = nd
				prevEdge[e.To] = eid
				heap.Push(h, pqItem{node: e.To, dist: nd})
			} else if nd == dist[e.To] && eid < prevEdge[e.To] {
				prevEdge[e.To] = eid
			}
		}
	}
	if math.IsInf(dist[dst], 1) {
		return Path{}, fmt.Errorf("roadnet: node %d unreachable from %d", dst, src)
	}
	var rev []EdgeID
	for at := dst; at != src; {
		eid := prevEdge[at]
		rev = append(rev, eid)
		at = g.Edges[eid].From
	}
	edges := make([]EdgeID, len(rev))
	for i := range rev {
		edges[i] = rev[len(rev)-1-i]
	}
	return g.NewPath(edges)
}

// ReferenceAlternativeRoutes is the frozen baseline of AlternativeRoutes: it
// rebuilds the reverse-edge map on every call, tracks edge penalties in a
// map, and deduplicates paths through string keys. Route semantics match
// Graph.AlternativeRoutes exactly.
func ReferenceAlternativeRoutes(g *Graph, src, dst NodeID, k int, penalty float64) ([]Path, error) {
	if k <= 0 {
		return nil, nil
	}
	first, err := ReferenceShortestPath(g, src, dst, ByLength)
	if err != nil {
		return nil, err
	}
	paths := []Path{first}
	if src == dst || k == 1 {
		return paths, nil
	}
	uses := make(map[EdgeID]int)
	reverse := g.reverseEdgeMap()
	bump := func(p Path) {
		for _, eid := range p.Edges {
			uses[eid]++
			if rev, ok := reverse[eid]; ok {
				uses[rev]++
			}
		}
	}
	bump(first)
	seen := map[string]bool{pathKey(first): true}
	// A few extra attempts beyond k cover the case where penalization
	// re-discovers an already-known path before diverging.
	for attempts := 0; len(paths) < k && attempts < 3*k; attempts++ {
		p, err := referenceShortestPathPenalized(g, src, dst, uses, penalty)
		if err != nil {
			break
		}
		bump(p)
		if key := pathKey(p); !seen[key] {
			seen[key] = true
			paths = append(paths, p)
		}
	}
	return paths, nil
}

// reverseEdgeMap maps each edge to its opposite-direction twin, if any. The
// engine uses the cached slice form (Graph.reverseEdges); this per-call map
// build survives only as part of the frozen baseline.
func (g *Graph) reverseEdgeMap() map[EdgeID]EdgeID {
	byPair := make(map[[2]NodeID]EdgeID, len(g.Edges))
	for _, e := range g.Edges {
		byPair[[2]NodeID{e.From, e.To}] = e.ID
	}
	rev := make(map[EdgeID]EdgeID, len(g.Edges))
	for _, e := range g.Edges {
		if twin, ok := byPair[[2]NodeID{e.To, e.From}]; ok {
			rev[e.ID] = twin
		}
	}
	return rev
}

// pathKey returns a canonical identity string for a path's edge sequence.
// Superseded by pathSet in the query paths (no per-path string allocation);
// kept for the baseline and as the benchmark comparison point.
func pathKey(p Path) string {
	b := make([]byte, 0, len(p.Edges)*3)
	for _, e := range p.Edges {
		b = appendInt(b, int(e))
		b = append(b, ',')
	}
	return string(b)
}

func appendInt(b []byte, v int) []byte {
	if v == 0 {
		return append(b, '0')
	}
	if v < 0 {
		b = append(b, '-')
		v = -v
	}
	var tmp [20]byte
	i := len(tmp)
	for v > 0 {
		i--
		tmp[i] = byte('0' + v%10)
		v /= 10
	}
	return append(b, tmp[i:]...)
}
