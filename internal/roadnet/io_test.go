package roadnet

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/rng"
)

func TestGraphJSONRoundTrip(t *testing.T) {
	g := GenerateCity(DefaultCity(RadialCity), rng.New(3))
	var buf bytes.Buffer
	if err := g.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadGraphJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumNodes() != g.NumNodes() || got.NumEdges() != g.NumEdges() {
		t.Fatalf("sizes differ: %d/%d vs %d/%d", got.NumNodes(), got.NumEdges(), g.NumNodes(), g.NumEdges())
	}
	for i := range g.Nodes {
		if got.Nodes[i].Pos != g.Nodes[i].Pos {
			t.Fatalf("node %d position differs", i)
		}
	}
	for i := range g.Edges {
		a, b := got.Edges[i], g.Edges[i]
		if a.From != b.From || a.To != b.To || a.Length != b.Length || a.Speed != b.Speed || a.FreeSpeed != b.FreeSpeed {
			t.Fatalf("edge %d differs", i)
		}
	}
	// Adjacency is rebuilt: shortest paths agree.
	p1, err1 := g.ShortestPath(0, NodeID(g.NumNodes()-1), ByLength)
	p2, err2 := got.ShortestPath(0, NodeID(got.NumNodes()-1), ByLength)
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	if p1.Length != p2.Length {
		t.Fatalf("shortest paths differ after round trip: %v vs %v", p1.Length, p2.Length)
	}
}

func TestReadGraphJSONErrors(t *testing.T) {
	if _, err := ReadGraphJSON(strings.NewReader("nope")); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := ReadGraphJSON(strings.NewReader(`{"version":9}`)); err == nil {
		t.Error("wrong version accepted")
	}
	bad := `{"version":1,"nodes":[{"x":0,"y":0}],"edges":[{"from":0,"to":5,"length":1,"speed":1,"free_speed":1}]}`
	if _, err := ReadGraphJSON(strings.NewReader(bad)); err == nil {
		t.Error("out-of-range edge accepted")
	}
}
