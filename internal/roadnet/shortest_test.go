package roadnet

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/geo"
	"repro/internal/rng"
)

// diamondGraph: 0 -> 3 via 1 (short) or 2 (long), plus a slow shortcut.
//
//	  1
//	 / \
//	0   3
//	 \ /
//	  2
func diamondGraph(t *testing.T) *Graph {
	t.Helper()
	g := NewGraph()
	g.AddNode(geo.Pt(0, 0))    // 0
	g.AddNode(geo.Pt(50, 40))  // 1
	g.AddNode(geo.Pt(50, -80)) // 2
	g.AddNode(geo.Pt(100, 0))  // 3
	for _, r := range [][2]NodeID{{0, 1}, {1, 3}, {0, 2}, {2, 3}} {
		if err := g.AddRoad(r[0], r[1], 10, 10); err != nil {
			t.Fatal(err)
		}
	}
	return g
}

func TestShortestPathPicksShortRoute(t *testing.T) {
	g := diamondGraph(t)
	p, err := g.ShortestPath(0, 3, ByLength)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Nodes) != 3 || p.Nodes[1] != 1 {
		t.Errorf("path via %v, want via node 1", p.Nodes)
	}
	want := geo.Pt(0, 0).Dist(geo.Pt(50, 40)) * 2
	if math.Abs(p.Length-want) > 1e-9 {
		t.Errorf("length = %v, want %v", p.Length, want)
	}
}

func TestShortestPathByTime(t *testing.T) {
	// Short-but-slow vs long-but-fast.
	g := NewGraph()
	a := g.AddNode(geo.Pt(0, 0))
	m := g.AddNode(geo.Pt(1, 50))
	b := g.AddNode(geo.Pt(100, 0))
	g.AddEdge(a, b, 100, 2, 10)  // direct: 50 s
	g.AddEdge(a, m, 100, 10, 10) // detour: 10 s + 10 s
	g.AddEdge(m, b, 100, 10, 10)
	pt, err := g.ShortestPath(a, b, ByTime)
	if err != nil {
		t.Fatal(err)
	}
	if len(pt.Nodes) != 3 {
		t.Errorf("ByTime path = %v, want detour", pt.Nodes)
	}
	pl, err := g.ShortestPath(a, b, ByLength)
	if err != nil {
		t.Fatal(err)
	}
	if len(pl.Nodes) != 2 {
		t.Errorf("ByLength path = %v, want direct", pl.Nodes)
	}
}

func TestShortestPathUnreachable(t *testing.T) {
	g := NewGraph()
	a := g.AddNode(geo.Pt(0, 0))
	b := g.AddNode(geo.Pt(1, 0))
	if _, err := g.ShortestPath(a, b, ByLength); err == nil {
		t.Error("unreachable destination did not error")
	}
	if _, err := g.ShortestPath(a, NodeID(9), ByLength); err == nil {
		t.Error("out-of-range destination did not error")
	}
}

func TestShortestPathSelf(t *testing.T) {
	g := diamondGraph(t)
	p, err := g.ShortestPath(2, 2, ByLength)
	if err != nil {
		t.Fatal(err)
	}
	if p.Length != 0 || len(p.Edges) != 0 {
		t.Errorf("self path = %+v", p)
	}
}

func TestAllShortestDists(t *testing.T) {
	g := diamondGraph(t)
	dist := g.AllShortestDists(0, ByLength)
	p13, _ := g.ShortestPath(0, 3, ByLength)
	if math.Abs(dist[3]-p13.Length) > 1e-9 {
		t.Errorf("dist[3] = %v, want %v", dist[3], p13.Length)
	}
	if dist[0] != 0 {
		t.Errorf("dist[0] = %v", dist[0])
	}
	// Disconnected node.
	g2 := NewGraph()
	g2.AddNode(geo.Pt(0, 0))
	g2.AddNode(geo.Pt(1, 1))
	d := g2.AllShortestDists(0, ByLength)
	if !math.IsInf(d[1], 1) {
		t.Errorf("unreachable dist = %v", d[1])
	}
}

func TestKShortestPathsOrderAndSimplicity(t *testing.T) {
	s := rng.New(1)
	g := GenerateCity(DefaultCity(GridCity), s)
	src, dst := NodeID(0), NodeID(g.NumNodes()-1)
	paths, err := g.KShortestPaths(src, dst, 5, ByLength)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 5 {
		t.Fatalf("got %d paths, want 5", len(paths))
	}
	for i, p := range paths {
		if !p.IsSimple() {
			t.Errorf("path %d is not simple", i)
		}
		if p.Nodes[0] != src || p.Nodes[len(p.Nodes)-1] != dst {
			t.Errorf("path %d endpoints wrong", i)
		}
		if i > 0 && p.Length < paths[i-1].Length-1e-9 {
			t.Errorf("paths out of order at %d: %v < %v", i, p.Length, paths[i-1].Length)
		}
		for j := 0; j < i; j++ {
			if PathEqual(p, paths[j]) {
				t.Errorf("paths %d and %d identical", i, j)
			}
		}
	}
	// First path must be THE shortest path.
	sp, _ := g.ShortestPath(src, dst, ByLength)
	if math.Abs(paths[0].Length-sp.Length) > 1e-9 {
		t.Errorf("first path length %v != shortest %v", paths[0].Length, sp.Length)
	}
}

func TestKShortestPathsSmallGraph(t *testing.T) {
	g := diamondGraph(t)
	paths, err := g.KShortestPaths(0, 3, 10, ByLength)
	if err != nil {
		t.Fatal(err)
	}
	// Diamond has exactly 2 simple paths 0->3.
	if len(paths) != 2 {
		t.Fatalf("got %d paths, want 2", len(paths))
	}
	if paths[0].Length > paths[1].Length {
		t.Error("paths out of order")
	}
}

func TestKShortestPathsEdgeCases(t *testing.T) {
	g := diamondGraph(t)
	if ps, err := g.KShortestPaths(0, 3, 0, ByLength); err != nil || ps != nil {
		t.Errorf("k=0: %v %v", ps, err)
	}
	if _, err := g.KShortestPaths(0, 3, -1, ByLength); err != nil {
		t.Errorf("k=-1 errored: %v", err)
	}
	ps, err := g.KShortestPaths(1, 1, 3, ByLength)
	if err != nil || len(ps) != 1 {
		t.Errorf("self k-paths: %v %v", ps, err)
	}
	g2 := NewGraph()
	g2.AddNode(geo.Pt(0, 0))
	g2.AddNode(geo.Pt(1, 0))
	if _, err := g2.KShortestPaths(0, 1, 3, ByLength); err == nil {
		t.Error("unreachable k-paths did not error")
	}
}

// Property: on random grid cities, Dijkstra distance respects the triangle
// inequality through any intermediate node.
func TestQuickDijkstraTriangle(t *testing.T) {
	s := rng.New(99)
	cfg := DefaultCity(GridCity)
	cfg.Rows, cfg.Cols = 6, 6
	g := GenerateCity(cfg, s)
	f := func(a, b, c uint8) bool {
		n := g.NumNodes()
		na, nb, nc := NodeID(int(a)%n), NodeID(int(b)%n), NodeID(int(c)%n)
		dab := g.AllShortestDists(na, ByLength)[nb]
		dbc := g.AllShortestDists(nb, ByLength)[nc]
		dac := g.AllShortestDists(na, ByLength)[nc]
		return dac <= dab+dbc+1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: Yen paths are strictly increasing in cost or equal, and all
// distinct, on random OD pairs of a radial city.
func TestQuickYenProperties(t *testing.T) {
	s := rng.New(123)
	g := GenerateCity(DefaultCity(RadialCity), s)
	f := func(a, b uint8) bool {
		n := g.NumNodes()
		src, dst := NodeID(int(a)%n), NodeID(int(b)%n)
		if src == dst {
			return true
		}
		paths, err := g.KShortestPaths(src, dst, 4, ByLength)
		if err != nil {
			return false // radial city is strongly connected
		}
		for i := range paths {
			if !paths[i].IsSimple() {
				return false
			}
			if i > 0 && paths[i].Length < paths[i-1].Length-1e-9 {
				return false
			}
			for j := 0; j < i; j++ {
				if PathEqual(paths[i], paths[j]) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
