package roadnet

import (
	"math"

	"repro/internal/geo"
	"repro/internal/rng"
)

// CityKind selects one of the three synthetic city geometries, each matching
// the road structure of the corresponding real dataset in §5.1 of the paper.
type CityKind int

const (
	// GridCity is a dense Manhattan-style grid (Shanghai).
	GridCity CityKind = iota
	// RadialCity is a radial-ring historic-center layout (Roma).
	RadialCity
	// HillCity is a grid with heterogeneous speeds by district (Epfl / San
	// Francisco Bay Area: hills slow some corridors down).
	HillCity
)

// String implements fmt.Stringer.
func (k CityKind) String() string {
	switch k {
	case GridCity:
		return "grid"
	case RadialCity:
		return "radial"
	case HillCity:
		return "hill"
	}
	return "unknown"
}

// CityConfig parametrizes synthetic city generation.
type CityConfig struct {
	Kind CityKind
	// Grid dimensions (GridCity, HillCity).
	Rows, Cols int
	// Block edge length in meters.
	BlockLen float64
	// Radial parameters (RadialCity).
	Rings, Spokes int
	RingGap       float64
	// FreeSpeed is the uncongested speed in m/s.
	FreeSpeed float64
	// CongestionLevel in [0,1): expected fraction of speed lost to traffic.
	// Individual edges draw their factor around this level.
	CongestionLevel float64
	// Jitter perturbs node positions by up to this fraction of BlockLen to
	// avoid perfectly degenerate tie distances.
	Jitter float64
	// ArterialEvery promotes every k-th grid row and column to an arterial
	// and every k²-th to an expressway (GridCity only), mirroring the road
	// tiers of real street networks. Zero (the default) leaves the grid
	// single-tier. Contraction hierarchies need this structure at scale:
	// a uniform grid has Θ(√n) treewidth and no witnesses worth pruning
	// with, which is the known worst case for CH preprocessing.
	ArterialEvery int
	// ArterialSpeedup multiplies both the congested and free-flow speed of
	// arterial roads; expressways get twice this multiplier.
	ArterialSpeedup float64
}

// DefaultCity returns the standard configuration for each city kind, sized
// so that the §5 experiments (up to 100 users, 200 tasks) fit comfortably.
func DefaultCity(kind CityKind) CityConfig {
	switch kind {
	case RadialCity:
		return CityConfig{
			Kind: RadialCity, Rings: 6, Spokes: 12, RingGap: 400,
			FreeSpeed: 11, CongestionLevel: 0.35, Jitter: 0.05,
		}
	case HillCity:
		return CityConfig{
			Kind: HillCity, Rows: 10, Cols: 10, BlockLen: 350,
			FreeSpeed: 13, CongestionLevel: 0.25, Jitter: 0.05,
		}
	default:
		return CityConfig{
			Kind: GridCity, Rows: 12, Cols: 12, BlockLen: 300,
			FreeSpeed: 12, CongestionLevel: 0.3, Jitter: 0.05,
		}
	}
}

// GenerateCity builds a road graph per the configuration, drawing congestion
// and jitter from the given stream. The resulting graph is strongly
// connected by construction (all roads are bidirectional, the skeleton is
// connected).
func GenerateCity(cfg CityConfig, s *rng.Stream) *Graph {
	switch cfg.Kind {
	case RadialCity:
		return generateRadial(cfg, s)
	case HillCity:
		return generateHill(cfg, s)
	default:
		return generateGrid(cfg, s)
	}
}

// edgeSpeed draws a congested speed for one road around the configured
// congestion level, clamped to at least 10% of free-flow.
func edgeSpeed(cfg CityConfig, s *rng.Stream, localBias float64) float64 {
	level := cfg.CongestionLevel + localBias
	factor := 1 - level + s.Uniform(-0.15, 0.15)
	if factor < 0.1 {
		factor = 0.1
	}
	if factor > 1 {
		factor = 1
	}
	return cfg.FreeSpeed * factor
}

func jitterPos(cfg CityConfig, s *rng.Stream, p geo.Point) geo.Point {
	if cfg.Jitter <= 0 {
		return p
	}
	j := cfg.Jitter * cfg.BlockLen
	if j == 0 {
		j = cfg.Jitter * cfg.RingGap
	}
	return geo.Pt(p.X+s.Uniform(-j, j), p.Y+s.Uniform(-j, j))
}

func generateGrid(cfg CityConfig, s *rng.Stream) *Graph {
	g := NewGraph()
	// Exact-size reservation plus positional node IDs (row-major, so
	// id(r,c) needs no side table): million-node grids build in O(|V|)
	// memory with no slice-growth spikes and no O(|V|) scaffolding.
	g.Reserve(cfg.Rows*cfg.Cols, 2*(cfg.Rows*(cfg.Cols-1)+(cfg.Rows-1)*cfg.Cols))
	for r := 0; r < cfg.Rows; r++ {
		for c := 0; c < cfg.Cols; c++ {
			p := geo.Pt(float64(c)*cfg.BlockLen, float64(r)*cfg.BlockLen)
			g.AddNode(jitterPos(cfg, s, p))
		}
	}
	id := func(r, c int) NodeID { return NodeID(r*cfg.Cols + c) }
	// Central blocks are more congested, like a CBD.
	centerR, centerC := float64(cfg.Rows-1)/2, float64(cfg.Cols-1)/2
	bias := func(r, c int) float64 {
		dr := (float64(r) - centerR) / math.Max(1, centerR)
		dc := (float64(c) - centerC) / math.Max(1, centerC)
		dist := math.Hypot(dr, dc)
		return 0.35 * math.Max(0, 1-dist) // up to +0.35 congestion downtown
	}
	// tier returns the speed multiplier of a grid line: 1 for local
	// streets, ArterialSpeedup for arterials, twice that for expressways.
	tier := func(line int) float64 {
		if cfg.ArterialEvery <= 0 || line%cfg.ArterialEvery != 0 {
			return 1
		}
		if line%(cfg.ArterialEvery*cfg.ArterialEvery) == 0 {
			return 2 * cfg.ArterialSpeedup
		}
		return cfg.ArterialSpeedup
	}
	for r := 0; r < cfg.Rows; r++ {
		for c := 0; c < cfg.Cols; c++ {
			if c+1 < cfg.Cols {
				sp := edgeSpeed(cfg, s, bias(r, c))
				m := tier(r)
				mustRoad(g, id(r, c), id(r, c+1), sp*m, cfg.FreeSpeed*m)
			}
			if r+1 < cfg.Rows {
				sp := edgeSpeed(cfg, s, bias(r, c))
				m := tier(c)
				mustRoad(g, id(r, c), id(r+1, c), sp*m, cfg.FreeSpeed*m)
			}
		}
	}
	return g
}

func generateRadial(cfg CityConfig, s *rng.Stream) *Graph {
	g := NewGraph()
	g.Reserve(1+cfg.Rings*cfg.Spokes, 2*cfg.Spokes*(1+2*cfg.Rings))
	center := g.AddNode(geo.Pt(0, 0))
	// rings[i][j] is node on ring i (1-based rings), spoke j.
	rings := make([][]NodeID, cfg.Rings)
	for i := 0; i < cfg.Rings; i++ {
		rings[i] = make([]NodeID, cfg.Spokes)
		radius := float64(i+1) * cfg.RingGap
		for j := 0; j < cfg.Spokes; j++ {
			ang := 2 * math.Pi * float64(j) / float64(cfg.Spokes)
			p := geo.Pt(radius*math.Cos(ang), radius*math.Sin(ang))
			rings[i][j] = g.AddNode(jitterPos(cfg, s, p))
		}
	}
	// Inner rings are more congested (historic center).
	bias := func(ring int) float64 {
		return 0.4 * (1 - float64(ring)/float64(cfg.Rings))
	}
	// Spoke roads: center -> ring0, ring_i -> ring_{i+1}.
	for j := 0; j < cfg.Spokes; j++ {
		mustRoad(g, center, rings[0][j], edgeSpeed(cfg, s, bias(0)), cfg.FreeSpeed)
		for i := 0; i+1 < cfg.Rings; i++ {
			mustRoad(g, rings[i][j], rings[i+1][j], edgeSpeed(cfg, s, bias(i)), cfg.FreeSpeed)
		}
	}
	// Ring roads.
	for i := 0; i < cfg.Rings; i++ {
		for j := 0; j < cfg.Spokes; j++ {
			next := (j + 1) % cfg.Spokes
			mustRoad(g, rings[i][j], rings[i][next], edgeSpeed(cfg, s, bias(i)), cfg.FreeSpeed)
		}
	}
	return g
}

func generateHill(cfg CityConfig, s *rng.Stream) *Graph {
	g := NewGraph()
	g.Reserve(cfg.Rows*cfg.Cols, 2*(cfg.Rows*(cfg.Cols-1)+(cfg.Rows-1)*cfg.Cols)+2*minInt(cfg.Rows, cfg.Cols))
	ids := make([][]NodeID, cfg.Rows)
	// Hills: a few random district centers slow nearby roads.
	type hill struct {
		r, c   float64
		radius float64
	}
	hills := make([]hill, 3)
	for i := range hills {
		hills[i] = hill{
			r:      s.Uniform(0, float64(cfg.Rows-1)),
			c:      s.Uniform(0, float64(cfg.Cols-1)),
			radius: s.Uniform(1.5, 3.5),
		}
	}
	bias := func(r, c int) float64 {
		var b float64
		for _, h := range hills {
			d := math.Hypot(float64(r)-h.r, float64(c)-h.c)
			if d < h.radius {
				b += 0.3 * (1 - d/h.radius)
			}
		}
		return math.Min(b, 0.4)
	}
	for r := 0; r < cfg.Rows; r++ {
		ids[r] = make([]NodeID, cfg.Cols)
		for c := 0; c < cfg.Cols; c++ {
			p := geo.Pt(float64(c)*cfg.BlockLen, float64(r)*cfg.BlockLen)
			ids[r][c] = g.AddNode(jitterPos(cfg, s, p))
		}
	}
	for r := 0; r < cfg.Rows; r++ {
		for c := 0; c < cfg.Cols; c++ {
			if c+1 < cfg.Cols {
				mustRoad(g, ids[r][c], ids[r][c+1], edgeSpeed(cfg, s, bias(r, c)), cfg.FreeSpeed)
			}
			if r+1 < cfg.Rows {
				mustRoad(g, ids[r][c], ids[r+1][c], edgeSpeed(cfg, s, bias(r, c)), cfg.FreeSpeed)
			}
		}
	}
	// A couple of diagonal expressways (faster than free grid speed).
	diag := []struct{ r1, c1, r2, c2 int }{
		{0, 0, cfg.Rows - 1, cfg.Cols - 1},
	}
	for _, d := range diag {
		steps := minInt(cfg.Rows, cfg.Cols) - 1
		prev := ids[d.r1][d.c1]
		for i := 1; i <= steps; i++ {
			r := d.r1 + (d.r2-d.r1)*i/steps
			c := d.c1 + (d.c2-d.c1)*i/steps
			cur := ids[r][c]
			if cur != prev {
				mustRoad(g, prev, cur, cfg.FreeSpeed*1.2, cfg.FreeSpeed*1.2)
				prev = cur
			}
		}
	}
	return g
}

func mustRoad(g *Graph, a, b NodeID, speed, freeSpeed float64) {
	if err := g.AddRoad(a, b, speed, freeSpeed); err != nil {
		panic(err) // generation-internal invariant; endpoints always valid
	}
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
