package roadnet

import (
	"container/heap"
	"math"

	"repro/internal/parallel"
)

const (
	// altLandmarkCount is the number of ALT landmarks per weight.
	altLandmarkCount = 8
	// altMargin scales the landmark lower bounds fractionally below their
	// exact value. The precomputed distance tables are float sums, so the
	// triangle-inequality bounds they imply can overshoot the true distance
	// by a few ulps; shaving a relative 1e-6 makes the heuristic strictly
	// admissible (the accumulated rounding error of any realistic path is
	// orders of magnitude smaller) while giving up a negligible amount of
	// pruning. Strict admissibility is what guarantees every optimal
	// predecessor is settled before the search terminates — the property
	// the bit-identical tie-breaking rests on.
	altMargin = 1 - 1e-6
)

// altMinNodes is the node count below which goal-directed search is not
// worth the landmark precomputation and queries fall back to plain
// Dijkstra. A variable so tests can force either path.
var altMinNodes = 64

// Landmarks holds the precomputed ALT tables for one edge weight: for each
// landmark L, the distances d(L→v) to every node (fwd) and d(v→L) from
// every node (bwd, via reverse-graph Dijkstra). Together they give the
// triangle-inequality lower bound
//
//	d(v, dst) ≥ max(d(L,dst) − d(L,v), d(v,L) − d(dst,L))
//
// used as the A* heuristic.
type Landmarks struct {
	w     Weight
	nodes []NodeID
	fwd   [][]float64
	bwd   [][]float64
}

// NumLandmarks returns the landmark count.
func (l *Landmarks) NumLandmarks() int { return len(l.nodes) }

// landmarksFor returns the cached landmark tables for w, building them on
// first use. Small graphs return nil (plain-Dijkstra fallback).
func (g *Graph) landmarksFor(w Weight) *Landmarks {
	if g.NumNodes() < altMinNodes {
		return nil
	}
	c := g.cachesFor()
	c.lmOnce[w].Do(func() {
		c.lm[w] = buildLandmarks(g, w)
	})
	return c.lm[w]
}

// EnsureLandmarks forces the landmark tables for w to be built now (they
// are otherwise built lazily on the first sufficiently large query).
// Returns the tables, or nil when the graph is below the ALT threshold.
func (g *Graph) EnsureLandmarks(w Weight) *Landmarks { return g.landmarksFor(w) }

// buildLandmarks selects landmarks by farthest-point traversal and fills
// both distance tables. Selection is inherently sequential (each pick
// depends on the previous tables, which are kept as the forward tables);
// the backward tables are independent and computed in parallel.
func buildLandmarks(g *Graph, w Weight) *Landmarks {
	n := g.NumNodes()
	if n == 0 {
		return nil
	}
	landmarkBuilds.Inc()
	want := altLandmarkCount
	if want > n {
		want = n
	}
	lm := &Landmarks{w: w}
	// Seed: the node farthest from node 0 is a periphery point.
	pick, ok := farthestFinite(g.AllShortestDists(0, w), -1)
	if !ok {
		pick = 0
	}
	minDist := make([]float64, n)
	for i := range minDist {
		minDist[i] = math.Inf(1)
	}
	for len(lm.nodes) < want {
		lm.nodes = append(lm.nodes, pick)
		fd := g.AllShortestDists(pick, w)
		lm.fwd = append(lm.fwd, fd)
		for v := range minDist {
			if fd[v] < minDist[v] {
				minDist[v] = fd[v]
			}
		}
		next, ok := farthestFinite(minDist, 0)
		if !ok {
			break // remaining nodes are unreachable or coincide
		}
		pick = next
	}
	bwd, err := parallel.Map(len(lm.nodes), 0, func(i int) ([]float64, error) {
		return g.allShortestDistsReverse(lm.nodes[i], w), nil
	})
	if err != nil { // the worker fn never errors; keep the compiler honest
		panic(err)
	}
	lm.bwd = bwd
	return lm
}

// farthestFinite returns the index of the largest finite value strictly
// above floor (ties break to the lowest index, keeping selection
// deterministic), and whether one exists.
func farthestFinite(dist []float64, floor float64) (NodeID, bool) {
	best, bd, ok := NodeID(0), floor, false
	for i, d := range dist {
		if d > bd && !math.IsInf(d, 1) {
			best, bd, ok = NodeID(i), d, true
		}
	}
	return best, ok
}

// allShortestDistsReverse runs Dijkstra over the reversed graph: the result
// is the distance from every node TO src under w.
func (g *Graph) allShortestDistsReverse(src NodeID, w Weight) []float64 {
	in := g.inEdges()
	n := g.NumNodes()
	dist := make([]float64, n)
	for i := range dist {
		dist[i] = math.Inf(1)
	}
	dist[src] = 0
	h := &pq{{node: src, dist: 0}}
	done := make([]bool, n)
	for h.Len() > 0 {
		it := heap.Pop(h).(pqItem)
		u := it.node
		if done[u] {
			continue
		}
		done[u] = true
		for _, eid := range in[u] {
			e := g.Edges[eid]
			if nd := dist[u] + w.cost(e); nd < dist[e.From] {
				dist[e.From] = nd
				heap.Push(h, pqItem{node: e.From, dist: nd})
			}
		}
	}
	return dist
}
