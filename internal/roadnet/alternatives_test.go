package roadnet

import (
	"math"
	"testing"

	"repro/internal/rng"
)

func TestAlternativeRoutesBasics(t *testing.T) {
	g := GenerateCity(DefaultCity(GridCity), rng.New(1))
	src, dst := NodeID(0), NodeID(g.NumNodes()-1)
	paths, err := g.AlternativeRoutes(src, dst, 5, 0.4)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) < 2 {
		t.Fatalf("only %d alternatives", len(paths))
	}
	// First is the true shortest.
	sp, _ := g.ShortestPath(src, dst, ByLength)
	if math.Abs(paths[0].Length-sp.Length) > 1e-9 {
		t.Errorf("first alternative %v != shortest %v", paths[0].Length, sp.Length)
	}
	// All distinct, all valid walks src->dst.
	for i, p := range paths {
		if p.Nodes[0] != src || p.Nodes[len(p.Nodes)-1] != dst {
			t.Errorf("path %d has wrong endpoints", i)
		}
		for j := 0; j < i; j++ {
			if PathEqual(paths[i], paths[j]) {
				t.Errorf("paths %d and %d identical", i, j)
			}
		}
	}
}

func TestAlternativeRoutesDiverge(t *testing.T) {
	// On a grid, penalized alternatives for a same-row OD pair must leave
	// the straight-line corridor and be genuinely longer than the shortest
	// route. (Corner-to-corner pairs legitimately admit many equal-length
	// staircases; a straight-line pair does not.)
	cfg := DefaultCity(GridCity)
	g := GenerateCity(cfg, rng.New(2))
	src, dst := NodeID(0), NodeID(cfg.Cols-1) // opposite ends of row 0
	paths, err := g.AlternativeRoutes(src, dst, 5, 0.4)
	if err != nil {
		t.Fatal(err)
	}
	longer := 0
	for _, p := range paths[1:] {
		if p.Length > paths[0].Length*1.02 {
			longer++
		}
	}
	if longer == 0 {
		t.Error("no alternative is meaningfully longer than the shortest route")
	}
	// Edge overlap with the shortest route should drop for later routes.
	base := map[EdgeID]bool{}
	for _, e := range paths[0].Edges {
		base[e] = true
	}
	last := paths[len(paths)-1]
	shared := 0
	for _, e := range last.Edges {
		if base[e] {
			shared++
		}
	}
	if frac := float64(shared) / float64(len(last.Edges)); frac > 0.9 {
		t.Errorf("last alternative shares %.0f%% of edges with the shortest", frac*100)
	}
}

func TestAlternativeRoutesEdgeCases(t *testing.T) {
	g := GenerateCity(DefaultCity(RadialCity), rng.New(3))
	if ps, err := g.AlternativeRoutes(0, 5, 0, 0.4); err != nil || ps != nil {
		t.Errorf("k=0: %v %v", ps, err)
	}
	ps, err := g.AlternativeRoutes(4, 4, 3, 0.4)
	if err != nil || len(ps) != 1 {
		t.Errorf("self: %v %v", ps, err)
	}
	ps, err = g.AlternativeRoutes(0, 5, 1, 0.4)
	if err != nil || len(ps) != 1 {
		t.Errorf("k=1: %v %v", ps, err)
	}
	g2 := NewGraph()
	g2.AddNode(g.Pos(0))
	g2.AddNode(g.Pos(1))
	if _, err := g2.AlternativeRoutes(0, 1, 3, 0.4); err == nil {
		t.Error("unreachable pair did not error")
	}
}

func TestAlternativeRoutesDeterministic(t *testing.T) {
	g := GenerateCity(DefaultCity(HillCity), rng.New(4))
	a, err := g.AlternativeRoutes(0, NodeID(g.NumNodes()-1), 4, 0.4)
	if err != nil {
		t.Fatal(err)
	}
	b, err := g.AlternativeRoutes(0, NodeID(g.NumNodes()-1), 4, 0.4)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatal("nondeterministic alternative count")
	}
	for i := range a {
		if !PathEqual(a[i], b[i]) {
			t.Fatalf("alternative %d differs between runs", i)
		}
	}
}

func TestReverseEdgeMap(t *testing.T) {
	g := GenerateCity(DefaultCity(GridCity), rng.New(5))
	rev := g.reverseEdgeMap()
	// Every road is bidirectional in generated cities: every edge must have
	// a twin, and twins must be mutual.
	for _, e := range g.Edges {
		twin, ok := rev[e.ID]
		if !ok {
			t.Fatalf("edge %d has no twin", e.ID)
		}
		te := g.Edges[twin]
		if te.From != e.To || te.To != e.From {
			t.Fatalf("edge %d twin %d endpoints wrong", e.ID, twin)
		}
		if back, ok := rev[twin]; !ok || back != e.ID {
			t.Fatalf("twin relation not mutual for %d", e.ID)
		}
	}
}
