package roadnet

import (
	"time"

	"repro/internal/parallel"
)

// This file implements contraction-hierarchy (CH) preprocessing: the
// prove-then-speed rung above the ALT engine for continent-scale graphs.
// Preprocessing contracts nodes in rounds of (priority, NodeID)-minimal
// independent sets, inserting witness-checked shortcut edges so that every
// shortest path of the original graph keeps an "up-down" representation:
// a path that first climbs to its highest-ranked node through upward CH
// edges and then descends through downward ones. Queries (ch_query.go) are
// then a bidirectional Dijkstra over just the upward/downward edge sets.
//
// # Determinism under parallel contraction
//
// Each round is three phases. Phase 1 recomputes contraction priorities for
// nodes whose neighborhood changed; phase 2 selects the independent set
// (a node is contracted iff its (priority, NodeID) pair is strictly minimal
// among its uncontracted overlay neighbors — a pure function of round-start
// state); phase 3 runs the witness searches that decide each contracted
// node's shortcuts. All three phases are read-only against the round-start
// overlay, so they parallelize freely across internal/parallel with
// index-ordered results. Every mutation — arc removal, shortcut insertion,
// rank assignment, CH-edge numbering — happens in a single sequential merge
// in ascending contracted-NodeID order. The hierarchy (ordering, shortcut
// set, CSR layout) is therefore bit-identical at any worker count, which
// TestHierarchyBuildDeterministic enforces at 1, 4, and 8 workers.
//
// # Exactness contract (strict witnessing + tie taint)
//
// A shortcut u→w over contracted v is pruned only when a witness path
// shorter than w(u,v)+w(v,w) beyond the chTieRel tie band exists; an equal
// or near-equal witness does NOT prune. This keeps every shortest path —
// not just one per OD pair, and robustly under float association error —
// representable, which is what lets the query detect all exact-cost ties
// and delegate those queries to the canonical engine (see ch_query.go).
// The one place equal-cost alternatives are collapsed is the overlay's
// one-arc-per-node-pair invariant: when an upsert meets an existing arc of
// exactly equal weight, the earlier (lower CH-edge index, matching the
// lowest-EdgeID contract) arc is kept and marked tie-tainted, and taint
// propagates into every shortcut built on top of it. Relaxing a tainted
// edge at query time counts as a tie, so the ambiguity can never leak into
// an answered path.

const (
	// chSimWitnessSettles caps the witness Dijkstras of the priority
	// estimation (re-run for most remaining nodes every round, so it must
	// stay cheap); chContractWitnessSettles caps the contraction-time
	// searches, whose prune quality keeps the overlay sparse. Hitting a cap
	// conservatively keeps the shortcut (more edges, never a wrong
	// distance), and fixed caps keep the searches deterministic.
	chSimWitnessSettles      = 16
	chContractWitnessSettles = 500

	// chCoreMaxAvgDeg stops contraction once the remaining overlay's mean
	// degree (in+out arcs per node) exceeds this bound. Grid-like graphs
	// have Θ(√n) treewidth, so full contraction necessarily densifies the
	// tail into a quasi-clique whose witness searches dominate the whole
	// build superlinearly; freezing that residue as an uncontracted core
	// the query searches like plain bidirectional Dijkstra keeps
	// preprocessing near-linear while queries outside the core still climb
	// the hierarchy. Purely a build/query trade-off — correctness and
	// determinism are unaffected by where the cut lands.
	chCoreMaxAvgDeg = 24

	// chTieRel is the relative width of the tie band: two path costs
	// within chTieRel·max(a,b) of each other are treated as tied. Exact
	// equality is not enough — the reference sums edge costs left to
	// right while the CH query sums shortcut trees, and float addition is
	// non-associative, so two paths with bit-equal left-associated sums
	// can differ by a few ulps in tree order. Association error is
	// bounded by ~n·ε ≈ 1e-14 relative for realistic path lengths, two
	// orders of magnitude inside the band; genuine cost differences on
	// jittered graphs are ≥1e-6 relative, six orders outside it. A
	// band-tie only ever delegates to the exact engine — it never changes
	// an answer, only who computes it.
	chTieRel = 1e-12
)

// chNearEqual reports whether a and b are within the relative tie band
// (exact equality included).
func chNearEqual(a, b float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	m := a
	if b > m {
		m = b
	}
	return d <= chTieRel*m
}

// chEdge is one edge of the hierarchy search graph: either an original
// graph edge (mid < 0, orig = its EdgeID) or a shortcut standing for the
// two-edge path left+right over the contracted middle node mid.
type chEdge struct {
	from, to    int32
	mid         int32 // contracted middle node (shortcuts), -1 for originals
	left, right int32 // constituent chEdge indices (shortcuts only)
	orig        int32 // original EdgeID (originals only), -1 for shortcuts
	weight      float64
}

// Hierarchy is an immutable contraction hierarchy over one graph and one
// edge weight. Build with BuildHierarchy, attach with Graph.AttachHierarchy;
// plain engine queries under the matching weight then run on it
// automatically. Safe for concurrent queries.
type Hierarchy struct {
	w    Weight
	n    int
	rank []int32 // rank[node] = contraction order (higher = later)

	edges []chEdge
	taint []bool // taint[e]: e's unpacking collapsed an exact-cost tie

	// CSR adjacency of the search graph. upArc[upOff[v]:upOff[v+1]] lists
	// CH edges leaving v toward higher-ranked nodes (forward search);
	// downArc[downOff[v]:downOff[v+1]] lists CH edges entering v from
	// higher-ranked nodes (backward search).
	upOff, downOff []int32
	upArc, downArc []int32

	shortcuts    int
	buildTies    int
	rounds       int
	core         int
	buildSeconds float64
}

// NumShortcuts returns the number of shortcut edges in the hierarchy.
func (h *Hierarchy) NumShortcuts() int { return h.shortcuts }

// Rounds returns the number of independent-set contraction rounds the
// build took.
func (h *Hierarchy) Rounds() int { return h.rounds }

// BuildTies returns how many exact-cost ties preprocessing collapsed (and
// taint-marked). Zero on graphs with distinct path costs; large on
// deliberately tie-heavy graphs such as unit grids.
func (h *Hierarchy) BuildTies() int { return h.buildTies }

// CoreSize returns how many nodes were left uncontracted as the dense core
// (zero when the graph contracted fully).
func (h *Hierarchy) CoreSize() int { return h.core }

// BuildSeconds returns the wall-clock preprocessing time.
func (h *Hierarchy) BuildSeconds() float64 { return h.buildSeconds }

// Weight returns the edge weight the hierarchy was preprocessed for.
func (h *Hierarchy) Weight() Weight { return h.w }

// Bytes returns the resident size of the hierarchy's arrays, the number
// BENCH_routing.json reports as preprocessing cost.
func (h *Hierarchy) Bytes() int64 {
	b := int64(cap(h.rank)) * 4
	b += int64(cap(h.edges)) * 40
	b += int64(cap(h.taint))
	b += int64(cap(h.upOff)+cap(h.downOff)+cap(h.upArc)+cap(h.downArc)) * 4
	return b
}

// overlayArc is one arc of the contraction overlay: the remaining graph
// over uncontracted nodes, with at most one (lightest, earliest) arc per
// ordered node pair.
type overlayArc struct {
	to int32
	ch int32
	w  float64
}

// chBuilder holds the mutable contraction state.
type chBuilder struct {
	g       *Graph
	w       Weight
	n       int
	workers int

	adjOut, adjIn [][]overlayArc
	edges         []chEdge
	taint         []bool

	rank      []int32 // -1 while uncontracted
	nextRank  int32
	pri       []int64
	deleted   []int32 // deleted-neighbors term of the priority
	dirty     []bool  // priority must be recomputed
	remaining []int32 // uncontracted nodes, ascending
	inSet     []bool

	// Per-node CH arcs frozen at contraction time (become the CSRs).
	upList, downList [][]int32

	witness   chan *witnessScratch // reusable witness-search scratches
	shortcuts int
	buildTies int
	rounds    int
	core      int
}

// witnessScratch is the generation-stamped local-Dijkstra state one worker
// uses for witness searches.
type witnessScratch struct {
	dist []float64
	gen  []uint32
	id   uint32
	heap []pqEntry
	// Target stamps for multi-target early exit (separate generation space
	// from the distance labels).
	tgen []uint32
	tid  uint32
	// shortcut records accumulated for one contracted node.
	recs []shortcutRec
}

// shortcutRec is one shortcut decided in the parallel phase, applied in the
// sequential merge.
type shortcutRec struct {
	u, w       int32
	uvCh, vwCh int32
	weight     float64
}

// BuildHierarchy preprocesses g under w into a contraction hierarchy using
// the given worker count (<= 0 selects parallel.DefaultWorkers). The result
// is independent of the worker count. Building does not mutate g; attach
// the result with Graph.AttachHierarchy to route engine queries through it.
func BuildHierarchy(g *Graph, w Weight, workers int) *Hierarchy {
	start := time.Now()
	if workers <= 0 {
		workers = parallel.DefaultWorkers()
	}
	n := g.NumNodes()
	b := &chBuilder{g: g, w: w, n: n, workers: workers}
	b.init()
	for len(b.remaining) > 0 && !b.coreDense() {
		b.rounds++
		b.refreshPriorities()
		set := b.independentSet()
		recs := b.computeShortcuts(set)
		b.merge(set, recs)
		b.compactRemaining()
	}
	b.freezeCore()
	h := b.finish()
	h.buildSeconds = time.Since(start).Seconds()
	chBuilds.Inc()
	return h
}

// init seeds the overlay from the original edges, deduplicating parallel
// arcs per ordered pair (lightest wins; exact ties keep the lowest EdgeID
// and taint it, matching the canonical tie-breaking contract).
func (b *chBuilder) init() {
	n := b.n
	b.adjOut = make([][]overlayArc, n)
	b.adjIn = make([][]overlayArc, n)
	b.edges = make([]chEdge, 0, len(b.g.Edges))
	b.taint = make([]bool, 0, len(b.g.Edges))
	b.rank = make([]int32, n)
	b.pri = make([]int64, n)
	b.deleted = make([]int32, n)
	b.dirty = make([]bool, n)
	b.inSet = make([]bool, n)
	b.upList = make([][]int32, n)
	b.downList = make([][]int32, n)
	b.remaining = make([]int32, n)
	for i := range b.rank {
		b.rank[i] = -1
		b.dirty[i] = true
		b.remaining[i] = int32(i)
	}
	b.witness = make(chan *witnessScratch, b.workers)
	for i := 0; i < b.workers; i++ {
		b.witness <- &witnessScratch{
			dist: make([]float64, n),
			gen:  make([]uint32, n),
			tgen: make([]uint32, n),
		}
	}
	for i := range b.g.Edges {
		e := &b.g.Edges[i]
		if e.From == e.To {
			continue // self-loops are never on a shortest path (lengths > 0)
		}
		id := int32(len(b.edges))
		b.edges = append(b.edges, chEdge{
			from: int32(e.From), to: int32(e.To),
			mid: -1, left: -1, right: -1,
			orig: int32(e.ID), weight: b.w.cost(*e),
		})
		b.taint = append(b.taint, false)
		b.upsertArc(int32(e.From), int32(e.To), id, b.edges[id].weight)
	}
}

// upsertArc installs arc u→v into the overlay, keeping at most one arc per
// pair: strictly lighter replaces, exactly equal keeps the earlier edge and
// taints it, heavier is dropped (a dropped shortcut is also removed from
// the edge store — only arcs that ever lived in the overlay are real CH
// edges). Returns whether the arc was installed.
func (b *chBuilder) upsertArc(u, v, ch int32, wgt float64) bool {
	out := b.adjOut[u]
	for i := range out {
		if out[i].to != v {
			continue
		}
		if chNearEqual(wgt, out[i].w) {
			// Tied alternative collapsed: the kept edge's unpacking is no
			// longer canonically unique.
			b.taint[out[i].ch] = true
			b.buildTies++
			return false
		}
		if wgt > out[i].w {
			return false
		}
		out[i].ch, out[i].w = ch, wgt
		in := b.adjIn[v]
		for j := range in {
			if in[j].to == u {
				in[j].ch, in[j].w = ch, wgt
				break
			}
		}
		return true
	}
	b.adjOut[u] = append(out, overlayArc{to: v, ch: ch, w: wgt})
	b.adjIn[v] = append(b.adjIn[v], overlayArc{to: u, ch: ch, w: wgt})
	return true
}

// refreshPriorities recomputes the contraction priority of every dirty
// uncontracted node, in parallel. Priority is the classic edge-difference +
// deleted-neighbors heuristic: 2·(shortcuts a contraction would insert) −
// (arcs it removes) + 2·(already-contracted former neighbors). Lower
// contracts earlier.
func (b *chBuilder) refreshPriorities() {
	rem := b.remaining
	if err := parallel.ForEach(len(rem), b.workers, func(i int) error {
		v := rem[i]
		if !b.dirty[v] {
			return nil
		}
		ws := <-b.witness
		sc := b.simulate(ws, v, chSimWitnessSettles, false)
		b.witness <- ws
		b.pri[v] = 2*int64(sc) - int64(len(b.adjIn[v])+len(b.adjOut[v])) + 2*int64(b.deleted[v])
		b.dirty[v] = false
		return nil
	}); err != nil {
		panic(err) // the worker fn never errors
	}
}

// independentSet returns, in ascending NodeID order, the uncontracted nodes
// whose (priority, NodeID) is strictly minimal among all their overlay
// neighbors. Members are pairwise non-adjacent (the pair order is total),
// so their contractions touch disjoint arc sets and the round-start overlay
// is valid input for every member's witness searches.
func (b *chBuilder) independentSet() []int32 {
	rem := b.remaining
	if err := parallel.ForEach(len(rem), b.workers, func(i int) error {
		v := rem[i]
		b.inSet[v] = b.localMin(v)
		return nil
	}); err != nil {
		panic(err)
	}
	set := make([]int32, 0, len(rem)/4+1)
	for _, v := range rem {
		if b.inSet[v] {
			set = append(set, v)
		}
	}
	return set
}

// localMin reports whether v's (priority, NodeID) beats every overlay
// neighbor's.
func (b *chBuilder) localMin(v int32) bool {
	pv := b.pri[v]
	for _, a := range b.adjOut[v] {
		if pu := b.pri[a.to]; pu < pv || (pu == pv && a.to < v) {
			return false
		}
	}
	for _, a := range b.adjIn[v] {
		if pu := b.pri[a.to]; pu < pv || (pu == pv && a.to < v) {
			return false
		}
	}
	return true
}

// computeShortcuts runs the contraction witness searches for every member
// of the independent set in parallel (read-only against the round-start
// overlay) and returns each member's shortcut records in index order.
func (b *chBuilder) computeShortcuts(set []int32) [][]shortcutRec {
	recs, err := parallel.Map(len(set), b.workers, func(i int) ([]shortcutRec, error) {
		ws := <-b.witness
		ws.recs = ws.recs[:0]
		b.simulate(ws, set[i], chContractWitnessSettles, true)
		out := append([]shortcutRec(nil), ws.recs...)
		b.witness <- ws
		return out, nil
	})
	if err != nil {
		panic(err)
	}
	return recs
}

// simulate contracts v against the current overlay without mutating it:
// for every in-neighbor u it runs a bounded witness Dijkstra avoiding v and
// counts (and, when record is set, collects into ws.recs) the shortcuts u→w
// that survive — those with no strictly shorter witness. Equal-cost
// witnesses keep the shortcut so every shortest path stays representable.
// The settle cap trades effort for prune quality: priority estimation runs
// with a small cap, contraction with a generous one.
func (b *chBuilder) simulate(ws *witnessScratch, v int32, settleCap int, record bool) int {
	outs := b.adjOut[v]
	if len(outs) == 0 || len(b.adjIn[v]) == 0 {
		return 0
	}
	count := 0
	for _, ia := range b.adjIn[v] {
		u := ia.to
		// Distance horizon: beyond the heaviest possible shortcut from u,
		// witnesses cannot matter. Stamp the shortcut targets so the search
		// can stop as soon as all of them have settled.
		ws.tid++
		if ws.tid == 0 {
			for i := range ws.tgen {
				ws.tgen[i] = 0
			}
			ws.tid = 1
		}
		limit := 0.0
		targets := 0
		for _, oa := range outs {
			if oa.to != u {
				if c := ia.w + oa.w; c > limit {
					limit = c
				}
				ws.tgen[oa.to] = ws.tid
				targets++
			}
		}
		if targets == 0 {
			continue // only a back-arc to u itself
		}
		b.witnessSearch(ws, u, v, limit, targets, settleCap)
		for _, oa := range outs {
			if oa.to == u {
				continue
			}
			sc := ia.w + oa.w
			if ws.gen[oa.to] == ws.id && ws.dist[oa.to] < sc && !chNearEqual(ws.dist[oa.to], sc) {
				continue // witness shorter beyond the tie band: pruned
			}
			count++
			if record {
				ws.recs = append(ws.recs, shortcutRec{
					u: u, w: oa.to, uvCh: ia.ch, vwCh: oa.ch, weight: sc,
				})
			}
		}
	}
	return count
}

// nextID advances the scratch generation, zeroing stamps on wraparound.
func (ws *witnessScratch) nextID() {
	ws.id++
	if ws.id == 0 {
		for i := range ws.gen {
			ws.gen[i] = 0
		}
		ws.id = 1
	}
}

// witnessSearch runs a bounded Dijkstra from src over the overlay, skipping
// node skip, until all tgen-stamped targets settle, settleCap nodes settle,
// or the frontier passes limit. Labels are generation-stamped in ws;
// unsettled labels are upper bounds, which is sound for pruning (an upper
// bound already strictly below the shortcut proves a strictly shorter
// witness), and settled labels are final, so stopping once every target has
// settled changes no prune decision.
func (b *chBuilder) witnessSearch(ws *witnessScratch, src, skip int32, limit float64, targets, settleCap int) {
	ws.nextID()
	ws.heap = ws.heap[:0]
	ws.dist[src] = 0
	ws.gen[src] = ws.id
	ws.heap = pushEntry(ws.heap, 0, NodeID(src))
	settled := 0
	for len(ws.heap) > 0 && settled < settleCap {
		var top pqEntry
		ws.heap, top = popEntry(ws.heap)
		if top.key > limit {
			break
		}
		u := int32(top.node)
		if top.key > ws.dist[u] {
			continue // stale
		}
		settled++
		if ws.tgen[u] == ws.tid {
			if targets--; targets == 0 {
				break
			}
		}
		for _, a := range b.adjOut[u] {
			if a.to == skip {
				continue
			}
			nd := top.key + a.w
			if nd > limit {
				continue
			}
			if ws.gen[a.to] != ws.id || nd < ws.dist[a.to] {
				ws.dist[a.to] = nd
				ws.gen[a.to] = ws.id
				ws.heap = pushEntry(ws.heap, nd, NodeID(a.to))
			}
		}
	}
}

// merge applies one round's contractions sequentially in ascending NodeID
// order: freeze each member's arcs as its CH search edges, detach it from
// the overlay, insert its shortcuts, and assign its rank. This is the only
// phase that mutates shared state, which is what makes the whole build
// worker-count-invariant.
func (b *chBuilder) merge(set []int32, recs [][]shortcutRec) {
	for i, v := range set {
		b.inSet[v] = false
		for _, a := range b.adjIn[v] {
			b.downList[v] = append(b.downList[v], a.ch)
			b.removeArc(b.adjOut, a.to, v)
			b.deleted[a.to]++
			b.dirty[a.to] = true
		}
		for _, a := range b.adjOut[v] {
			b.upList[v] = append(b.upList[v], a.ch)
			b.removeArc(b.adjIn, a.to, v)
			b.deleted[a.to]++
			b.dirty[a.to] = true
		}
		b.adjIn[v], b.adjOut[v] = nil, nil
		for _, r := range recs[i] {
			id := int32(len(b.edges))
			b.edges = append(b.edges, chEdge{
				from: r.u, to: r.w, mid: v,
				left: r.uvCh, right: r.vwCh, orig: -1, weight: r.weight,
			})
			b.taint = append(b.taint, b.taint[r.uvCh] || b.taint[r.vwCh])
			if !b.upsertArc(r.u, r.w, id, r.weight) {
				// Dropped (heavier or equal to an existing arc): not a CH
				// edge after all.
				b.edges = b.edges[:id]
				b.taint = b.taint[:id]
			} else {
				b.shortcuts++
				b.dirty[r.u] = true
				b.dirty[r.w] = true
			}
		}
		b.rank[v] = b.nextRank
		b.nextRank++
	}
}

// removeArc deletes the arc toward node v from adj[u] (swap-remove; the
// mutation order is the sequential merge order, so list order stays
// deterministic).
func (b *chBuilder) removeArc(adj [][]overlayArc, u, v int32) {
	list := adj[u]
	for i := range list {
		if list[i].to == v {
			last := len(list) - 1
			list[i] = list[last]
			adj[u] = list[:last]
			return
		}
	}
}

// compactRemaining drops freshly contracted nodes from the worklist.
func (b *chBuilder) compactRemaining() {
	keep := b.remaining[:0]
	for _, v := range b.remaining {
		if b.rank[v] < 0 {
			keep = append(keep, v)
		}
	}
	b.remaining = keep
}

// coreDense reports whether the remaining overlay has densified past
// chCoreMaxAvgDeg — the point where further contraction costs more (in
// witness work and quadratic shortcut fill) than it will ever save at query
// time. A pure function of the overlay, so the cut is worker-count-invariant.
func (b *chBuilder) coreDense() bool {
	arcs := 0
	for _, v := range b.remaining {
		arcs += len(b.adjOut[v]) + len(b.adjIn[v])
	}
	return arcs > chCoreMaxAvgDeg*len(b.remaining)
}

// freezeCore assigns the uncontracted residue its ranks (ascending NodeID,
// above every contracted node) and exposes every remaining overlay arc to
// both query directions: the forward search may traverse a core arc and the
// backward search may traverse it reversed, so inside the core the query
// degrades gracefully to plain bidirectional Dijkstra. No arcs are removed
// and no shortcuts are added — the quadratic fill full contraction would
// have paid here is exactly what the core cut avoids.
func (b *chBuilder) freezeCore() {
	b.core = len(b.remaining)
	for _, v := range b.remaining {
		for _, a := range b.adjOut[v] {
			b.upList[v] = append(b.upList[v], a.ch)
		}
		for _, a := range b.adjIn[v] {
			b.downList[v] = append(b.downList[v], a.ch)
		}
		b.rank[v] = b.nextRank
		b.nextRank++
	}
	b.remaining = b.remaining[:0]
}

// finish packs the per-node CH arc lists into the CSR form the query walks.
func (b *chBuilder) finish() *Hierarchy {
	h := &Hierarchy{
		w: b.w, n: b.n,
		rank:      b.rank,
		edges:     b.edges,
		taint:     b.taint,
		shortcuts: b.shortcuts,
		buildTies: b.buildTies,
		rounds:    b.rounds,
		core:      b.core,
	}
	h.upOff = make([]int32, b.n+1)
	h.downOff = make([]int32, b.n+1)
	var upTotal, downTotal int32
	for v := 0; v < b.n; v++ {
		h.upOff[v] = upTotal
		h.downOff[v] = downTotal
		upTotal += int32(len(b.upList[v]))
		downTotal += int32(len(b.downList[v]))
	}
	h.upOff[b.n] = upTotal
	h.downOff[b.n] = downTotal
	h.upArc = make([]int32, upTotal)
	h.downArc = make([]int32, downTotal)
	for v := 0; v < b.n; v++ {
		copy(h.upArc[h.upOff[v]:], b.upList[v])
		copy(h.downArc[h.downOff[v]:], b.downList[v])
	}
	return h
}

// pushEntry and popEntry are the manual binary-heap primitives shared by
// the witness and CH query searches (same discipline as SearchScratch's
// heap, usable on any backing slice).
func pushEntry(h []pqEntry, key float64, n NodeID) []pqEntry {
	h = append(h, pqEntry{key: key, node: n})
	i := len(h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if h[parent].key <= h[i].key {
			break
		}
		h[parent], h[i] = h[i], h[parent]
		i = parent
	}
	return h
}

func popEntry(h []pqEntry) ([]pqEntry, pqEntry) {
	top := h[0]
	last := len(h) - 1
	h[0] = h[last]
	h = h[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < last && h[l].key < h[small].key {
			small = l
		}
		if r < last && h[r].key < h[small].key {
			small = r
		}
		if small == i {
			break
		}
		h[i], h[small] = h[small], h[i]
		i = small
	}
	return h, top
}
