package roadnet

import (
	"fmt"
	"math"
)

// SearchScratch is the reusable per-worker state of the routing engine:
// generation-stamped distance/predecessor/heuristic arrays (no O(|V|)
// reinitialization per query), a manually managed binary heap (no
// container/heap interface boxing), and the per-query landmark terms of the
// goal-directed (ALT) search. In steady state a point-to-point query through
// AppendShortestPath performs zero heap allocations.
//
// A scratch is not safe for concurrent use; give each worker its own (the
// Graph-level convenience methods draw from an internal pool). All query
// modes — plain, goal-directed, banned-edge/node, and penalized — share one
// search core with one explicit tie-breaking rule, so every mode returns
// bit-identical paths to the reference Dijkstra implementation.
//
// # Tie-breaking
//
// Where multiple shortest paths exist (exact float-equal costs), the engine
// canonicalizes: among all optimal predecessor edges of a node, the one
// with the lowest EdgeID wins. The rule is applied on relaxation
// (nd == dist[v] && eid < prev[v] updates the predecessor without touching
// the distance), which makes the reconstructed path independent of the
// order in which the priority queue settles equal-cost nodes — the property
// that lets A* with landmark lower bounds return bit-identical routes to
// plain Dijkstra even on tie-heavy unit grids.
type SearchScratch struct {
	g *Graph

	gen     uint32
	dist    []float64
	prev    []EdgeID
	distGen []uint32
	hval    []float64
	hGen    []uint32

	heap []pqEntry

	// ALT state for the current query (nil lm disables the heuristic).
	lm  *Landmarks
	lmT []lmTerm

	// Edge-use counters for penalized alternative-route searches, stamped
	// so resets are O(1).
	uses    []int32
	usesGen []uint32
	useGen  uint32

	// Bidirectional contraction-hierarchy query state, allocated on first
	// use when a hierarchy is attached (ch_query.go).
	chs *chScratch

	settled int
}

// pqEntry is one binary-heap slot: key is dist + heuristic.
type pqEntry struct {
	key  float64
	node NodeID
}

// lmTerm holds the per-query constants of one landmark: the precomputed
// distances between the landmark and the query target.
type lmTerm struct {
	fwdDst float64 // d(L → dst)
	bwdDst float64 // d(dst → L)
	fwdOK  bool
	bwdOK  bool
}

// NewSearchScratch returns a fresh scratch bound to g. Long-lived workers
// that issue many queries should hold one scratch each; one-off callers can
// simply use the Graph methods, which pool scratches internally.
func (g *Graph) NewSearchScratch() *SearchScratch { return &SearchScratch{g: g} }

// ensure sizes the stamped arrays for n nodes and m edges.
func (s *SearchScratch) ensure(n, m int) {
	if len(s.dist) < n {
		s.dist = make([]float64, n)
		s.prev = make([]EdgeID, n)
		s.distGen = make([]uint32, n)
		s.hval = make([]float64, n)
		s.hGen = make([]uint32, n)
	}
	if len(s.uses) < m {
		s.uses = make([]int32, m)
		s.usesGen = make([]uint32, m)
	}
}

// nextGen starts a new query generation, clearing stamps in O(1). On the
// (rare) uint32 wraparound the stamp arrays are zeroed so stale generations
// can never alias.
func (s *SearchScratch) nextGen() {
	s.gen++
	if s.gen == 0 {
		for i := range s.distGen {
			s.distGen[i] = 0
			s.hGen[i] = 0
		}
		s.gen = 1
	}
}

// resetUses clears the penalized-search edge counters in O(1).
func (s *SearchScratch) resetUses() {
	s.useGen++
	if s.useGen == 0 {
		for i := range s.usesGen {
			s.usesGen[i] = 0
		}
		s.useGen = 1
	}
}

// bumpUse increments the penalty counter of edge e.
func (s *SearchScratch) bumpUse(e EdgeID) {
	if s.usesGen[e] != s.useGen {
		s.usesGen[e] = s.useGen
		s.uses[e] = 0
	}
	s.uses[e]++
}

// useCount returns the penalty counter of edge e.
func (s *SearchScratch) useCount(e EdgeID) int32 {
	if s.usesGen[e] != s.useGen {
		return 0
	}
	return s.uses[e]
}

// --- binary heap (manual: no interface boxing, reused backing array) ---

func (s *SearchScratch) push(key float64, n NodeID) {
	s.heap = append(s.heap, pqEntry{key: key, node: n})
	i := len(s.heap) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if s.heap[parent].key <= s.heap[i].key {
			break
		}
		s.heap[parent], s.heap[i] = s.heap[i], s.heap[parent]
		i = parent
	}
}

func (s *SearchScratch) pop() pqEntry {
	top := s.heap[0]
	last := len(s.heap) - 1
	s.heap[0] = s.heap[last]
	s.heap = s.heap[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < last && s.heap[l].key < s.heap[small].key {
			small = l
		}
		if r < last && s.heap[r].key < s.heap[small].key {
			small = r
		}
		if small == i {
			break
		}
		s.heap[i], s.heap[small] = s.heap[small], s.heap[i]
		i = small
	}
	return top
}

// --- ALT heuristic ---

// prepareALT resolves the landmark tables for the query weight and caches
// the per-landmark target terms. Penalized searches pass ByLength: their
// edge costs are Length·(1+penalty·uses) ≥ Length, so length lower bounds
// remain admissible. Banned edges/nodes only lengthen paths, so the bounds
// survive those too.
func (s *SearchScratch) prepareALT(dst NodeID, w Weight, disable bool) {
	s.lm = nil
	if disable {
		return
	}
	lm := s.g.landmarksFor(w)
	if lm == nil || len(lm.nodes) == 0 {
		return
	}
	s.lm = lm
	if cap(s.lmT) < len(lm.nodes) {
		s.lmT = make([]lmTerm, len(lm.nodes))
	}
	s.lmT = s.lmT[:len(lm.nodes)]
	for i := range lm.nodes {
		fd, bd := lm.fwd[i][dst], lm.bwd[i][dst]
		s.lmT[i] = lmTerm{
			fwdDst: fd, bwdDst: bd,
			fwdOK: !math.IsInf(fd, 1),
			bwdOK: !math.IsInf(bd, 1),
		}
	}
}

// h returns the landmark lower bound on the distance from v to the query
// target, scaled by altMargin to keep it strictly admissible under
// floating-point error in the precomputed tables. Cached per (query, node).
func (s *SearchScratch) h(v NodeID) float64 {
	if s.lm == nil {
		return 0
	}
	if s.hGen[v] == s.gen {
		return s.hval[v]
	}
	var best float64
	for i := range s.lmT {
		t := &s.lmT[i]
		if t.fwdOK {
			// d(v,dst) ≥ d(L,dst) − d(L,v); an unreachable d(L,v) makes the
			// term −Inf, which the max discards naturally.
			if d := t.fwdDst - s.lm.fwd[i][v]; d > best {
				best = d
			}
		}
		if t.bwdOK {
			// d(v,dst) ≥ d(v,L) − d(dst,L); guard the +Inf − finite case.
			if bv := s.lm.bwd[i][v]; !math.IsInf(bv, 1) {
				if d := bv - t.bwdDst; d > best {
					best = d
				}
			}
		}
	}
	best *= altMargin
	s.hval[v] = best
	s.hGen[v] = s.gen
	return best
}

// --- search core ---

// searchOpts selects the query mode.
type searchOpts struct {
	w           Weight
	bannedEdges map[EdgeID]bool
	bannedNodes map[NodeID]bool
	penalized   bool // cost = Length·(1 + penalty·uses[e]); w is ignored
	penalty     float64
	noALT       bool // force the plain-Dijkstra fallback
	noCH        bool // skip an attached contraction hierarchy
}

// chEligible reports whether the query mode can run on an attached
// hierarchy: only plain queries qualify — bans and penalties change the
// metric away from the preprocessed one, so they always use the exact core.
func (o searchOpts) chEligible() bool {
	return o.bannedEdges == nil && o.bannedNodes == nil && !o.penalized && !o.noCH
}

// run executes one goal-directed search and leaves the labels in the
// scratch. It reports whether dst was reached. The loop is A* with lazy
// deletion and re-expansion: a popped entry whose key exceeds the node's
// current dist+h is stale and skipped; a node whose label improves after it
// was settled simply re-enters the queue. Termination is when the minimum
// popped key exceeds the target's label — with the margin-scaled admissible
// heuristic this settles every optimal predecessor (including exact-tie
// ones), which is what makes the canonical tie-breaking deterministic
// across query modes.
func (s *SearchScratch) run(src, dst NodeID, o searchOpts) bool {
	g := s.g
	s.ensure(g.NumNodes(), g.NumEdges())
	s.nextGen()
	hw := o.w
	if o.penalized {
		hw = ByLength
	}
	s.prepareALT(dst, hw, o.noALT)
	s.heap = s.heap[:0]
	s.settled = 0
	s.dist[src] = 0
	s.prev[src] = -1
	s.distGen[src] = s.gen
	s.push(s.h(src), src)
	for len(s.heap) > 0 {
		it := s.pop()
		if s.distGen[dst] == s.gen && it.key > s.dist[dst] {
			break
		}
		u := it.node
		if it.key > s.dist[u]+s.h(u) {
			continue // stale entry: the label improved after this push
		}
		s.settled++
		du := s.dist[u]
		for _, eid := range g.out[u] {
			if o.bannedEdges != nil && o.bannedEdges[eid] {
				continue
			}
			e := &g.Edges[eid]
			v := e.To
			if o.bannedNodes != nil && o.bannedNodes[v] {
				continue
			}
			var cost float64
			if o.penalized {
				cost = e.Length * (1 + o.penalty*float64(s.useCount(eid)))
			} else if o.w == ByTime {
				cost = e.Length / e.Speed
			} else {
				cost = e.Length
			}
			nd := du + cost
			if s.distGen[v] != s.gen || nd < s.dist[v] {
				s.dist[v] = nd
				s.prev[v] = eid
				s.distGen[v] = s.gen
				s.push(nd+s.h(v), v)
			} else if nd == s.dist[v] && eid < s.prev[v] {
				// Canonical tie-break: lowest optimal predecessor edge wins.
				s.prev[v] = eid
			}
		}
	}
	if s.lm != nil {
		if n := g.NumNodes(); n > 0 {
			landmarkPruneRatio.Set(1 - float64(s.settled)/float64(n))
		}
	}
	return s.distGen[dst] == s.gen
}

// appendPathEdges reconstructs the edge sequence src→dst from the scratch
// labels, appending to buf (reversing in place, so no allocation when buf
// has capacity).
func (s *SearchScratch) appendPathEdges(buf []EdgeID, src, dst NodeID) []EdgeID {
	start := len(buf)
	for at := dst; at != src; {
		eid := s.prev[at]
		buf = append(buf, eid)
		at = s.g.Edges[eid].From
	}
	for i, j := start, len(buf)-1; i < j; i, j = i+1, j-1 {
		buf[i], buf[j] = buf[j], buf[i]
	}
	return buf
}

// checkEndpoints validates query endpoints against the bound graph.
func (s *SearchScratch) checkEndpoints(src, dst NodeID) error {
	if n := s.g.NumNodes(); int(src) >= n || int(dst) >= n || src < 0 || dst < 0 {
		return fmt.Errorf("roadnet: shortest path endpoints out of range: %d->%d", src, dst)
	}
	return nil
}

// AppendShortestPath appends the minimum-cost edge sequence from src to dst
// under w to buf and returns the extended buffer plus the path cost. It is
// the zero-allocation query path: with a warm scratch and a buf of
// sufficient capacity, no allocations are performed. src == dst yields an
// empty path and cost 0.
func (s *SearchScratch) AppendShortestPath(buf []EdgeID, src, dst NodeID, w Weight) ([]EdgeID, float64, error) {
	if err := s.checkEndpoints(src, dst); err != nil {
		return buf, 0, err
	}
	if src != dst {
		if h := s.g.hierarchyFor(w); h != nil {
			chQueries.Inc()
			res, cost, st := s.chQuery(h, buf, src, dst, w)
			switch st {
			case chHit:
				return res, cost, nil
			case chUnreachable:
				return buf, 0, fmt.Errorf("roadnet: node %d unreachable from %d", dst, src)
			}
			// chTie: delegate to the canonical core below.
			chFallbacks.Inc()
		}
	}
	if !s.run(src, dst, searchOpts{w: w}) {
		return buf, 0, fmt.Errorf("roadnet: node %d unreachable from %d", dst, src)
	}
	if src == dst {
		return buf, 0, nil
	}
	return s.appendPathEdges(buf, src, dst), s.dist[dst], nil
}

// ShortestPath returns the minimum-cost path from src to dst under w. The
// result Path is freshly allocated; the search state is reused.
func (s *SearchScratch) ShortestPath(src, dst NodeID, w Weight) (Path, error) {
	return s.shortestPath(src, dst, searchOpts{w: w})
}

// shortestPath runs one search in any mode and materializes the Path.
func (s *SearchScratch) shortestPath(src, dst NodeID, o searchOpts) (Path, error) {
	if err := s.checkEndpoints(src, dst); err != nil {
		return Path{}, err
	}
	if src != dst && o.chEligible() {
		if h := s.g.hierarchyFor(o.w); h != nil {
			chQueries.Inc()
			edges, _, st := s.chQuery(h, make([]EdgeID, 0, 16), src, dst, o.w)
			switch st {
			case chHit:
				return s.g.NewPath(edges)
			case chUnreachable:
				return Path{}, fmt.Errorf("roadnet: node %d unreachable from %d", dst, src)
			}
			chFallbacks.Inc()
		}
	}
	if !s.run(src, dst, o) {
		return Path{}, fmt.Errorf("roadnet: node %d unreachable from %d", dst, src)
	}
	if src == dst {
		return Path{Nodes: []NodeID{src}}, nil
	}
	edges := s.appendPathEdges(make([]EdgeID, 0, 16), src, dst)
	return s.g.NewPath(edges)
}
