package roadnet

import (
	"math"
	"testing"

	"repro/internal/geo"
	"repro/internal/rng"
)

// randomUnitGrid builds a rows×cols grid whose edges all have length 1 —
// deliberately tie-heavy, so that many distinct shortest paths have exactly
// equal cost and the canonical tie-breaking rule is exercised hard. Speeds
// are drawn from a small set so ByTime queries carry their own ties.
func randomUnitGrid(tb testing.TB, rows, cols int, s *rng.Stream) *Graph {
	tb.Helper()
	g := NewGraph()
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			g.AddNode(geo.Pt(float64(c), float64(r)))
		}
	}
	id := func(r, c int) NodeID { return NodeID(r*cols + c) }
	speeds := []float64{5, 10, 20}
	addBoth := func(a, b NodeID) {
		sp := speeds[s.Intn(len(speeds))]
		if _, err := g.AddEdge(a, b, 1, sp, sp); err != nil {
			tb.Fatal(err)
		}
		sp = speeds[s.Intn(len(speeds))]
		if _, err := g.AddEdge(b, a, 1, sp, sp); err != nil {
			tb.Fatal(err)
		}
	}
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				addBoth(id(r, c), id(r, c+1))
			}
			if r+1 < rows {
				addBoth(id(r, c), id(r+1, c))
			}
		}
	}
	return g
}

// assertSamePath fails unless the two paths are bit-identical: same edge
// sequence and exactly equal aggregate measures.
func assertSamePath(t *testing.T, ctx string, got, want Path) {
	t.Helper()
	if !PathEqual(got, want) {
		t.Fatalf("%s: edge sequences differ:\n got  %v\n want %v", ctx, got.Edges, want.Edges)
	}
	if got.Length != want.Length || got.Time != want.Time {
		t.Fatalf("%s: measures differ: got (%v,%v) want (%v,%v)", ctx, got.Length, got.Time, want.Length, want.Time)
	}
}

// forceALT lowers the ALT threshold so even tiny graphs run goal-directed,
// restoring it on cleanup.
func forceALT(t *testing.T) {
	t.Helper()
	old := altMinNodes
	altMinNodes = 1
	t.Cleanup(func() { altMinNodes = old })
}

func TestEngineMatchesReferenceOnUnitGrids(t *testing.T) {
	forceALT(t)
	s := rng.New(401)
	for _, size := range [][2]int{{4, 4}, {7, 5}, {12, 12}} {
		g := randomUnitGrid(t, size[0], size[1], s.Child())
		n := g.NumNodes()
		for trial := 0; trial < 60; trial++ {
			src, dst := NodeID(s.Intn(n)), NodeID(s.Intn(n))
			for _, w := range []Weight{ByLength, ByTime} {
				want, err1 := ReferenceShortestPath(g, src, dst, w)
				got, err2 := g.ShortestPath(src, dst, w)
				if (err1 == nil) != (err2 == nil) {
					t.Fatalf("error mismatch for %d->%d: ref=%v engine=%v", src, dst, err1, err2)
				}
				if err1 == nil {
					assertSamePath(t, "grid", got, want)
				}
			}
		}
	}
}

func TestEngineMatchesReferenceOnCities(t *testing.T) {
	s := rng.New(402)
	for _, kind := range []CityKind{GridCity, RadialCity, HillCity} {
		g := GenerateCity(DefaultCity(kind), s.Child())
		n := g.NumNodes()
		if n < altMinNodes {
			t.Fatalf("%v city too small to exercise ALT: %d nodes", kind, n)
		}
		for trial := 0; trial < 60; trial++ {
			src, dst := NodeID(s.Intn(n)), NodeID(s.Intn(n))
			for _, w := range []Weight{ByLength, ByTime} {
				want, err1 := ReferenceShortestPath(g, src, dst, w)
				got, err2 := g.ShortestPath(src, dst, w)
				if err1 != nil || err2 != nil {
					t.Fatalf("unexpected error on strongly connected city: %v / %v", err1, err2)
				}
				assertSamePath(t, kind.String(), got, want)
			}
		}
	}
}

func TestEngineMatchesReferenceWithBans(t *testing.T) {
	forceALT(t)
	s := rng.New(403)
	g := randomUnitGrid(t, 8, 8, s.Child())
	n, m := g.NumNodes(), g.NumEdges()
	for trial := 0; trial < 80; trial++ {
		src, dst := NodeID(s.Intn(n)), NodeID(s.Intn(n))
		bannedEdges := map[EdgeID]bool{}
		for i := 0; i < s.Intn(6); i++ {
			bannedEdges[EdgeID(s.Intn(m))] = true
		}
		bannedNodes := map[NodeID]bool{}
		for i := 0; i < s.Intn(3); i++ {
			v := NodeID(s.Intn(n))
			if v != src && v != dst {
				bannedNodes[v] = true
			}
		}
		want, err1 := referenceShortestPathBanned(g, src, dst, ByLength, bannedEdges, bannedNodes)
		got, err2 := g.shortestPathBanned(src, dst, ByLength, bannedEdges, bannedNodes)
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("error mismatch for %d->%d: ref=%v engine=%v", src, dst, err1, err2)
		}
		if err1 == nil {
			assertSamePath(t, "banned", got, want)
		}
	}
}

func TestAlternativeRoutesMatchReference(t *testing.T) {
	forceALT(t)
	s := rng.New(404)
	graphs := []*Graph{
		randomUnitGrid(t, 9, 9, s.Child()),
		GenerateCity(DefaultCity(GridCity), s.Child()),
		GenerateCity(DefaultCity(RadialCity), s.Child()),
	}
	for gi, g := range graphs {
		n := g.NumNodes()
		for trial := 0; trial < 25; trial++ {
			src, dst := NodeID(s.Intn(n)), NodeID(s.Intn(n))
			k := 1 + s.Intn(5)
			want, err1 := ReferenceAlternativeRoutes(g, src, dst, k, 0.4)
			got, err2 := g.AlternativeRoutes(src, dst, k, 0.4)
			if (err1 == nil) != (err2 == nil) {
				t.Fatalf("graph %d: error mismatch: ref=%v engine=%v", gi, err1, err2)
			}
			if len(got) != len(want) {
				t.Fatalf("graph %d %d->%d k=%d: route count %d != %d", gi, src, dst, k, len(got), len(want))
			}
			for i := range got {
				assertSamePath(t, "alternatives", got[i], want[i])
			}
		}
	}
}

func TestDijkstraFallbackAgreesWithALT(t *testing.T) {
	forceALT(t)
	s := rng.New(405)
	g := randomUnitGrid(t, 10, 10, s.Child())
	sc := g.NewSearchScratch()
	n := g.NumNodes()
	for trial := 0; trial < 60; trial++ {
		src, dst := NodeID(s.Intn(n)), NodeID(s.Intn(n))
		for _, w := range []Weight{ByLength, ByTime} {
			plain, err1 := sc.shortestPath(src, dst, searchOpts{w: w, noALT: true})
			alt, err2 := sc.shortestPath(src, dst, searchOpts{w: w})
			if err1 != nil || err2 != nil {
				t.Fatalf("unexpected error: %v / %v", err1, err2)
			}
			assertSamePath(t, "noALT-vs-ALT", alt, plain)
		}
	}
}

func TestLandmarkHeuristicAdmissible(t *testing.T) {
	s := rng.New(406)
	for _, w := range []Weight{ByLength, ByTime} {
		g := GenerateCity(DefaultCity(HillCity), s.Child())
		if g.EnsureLandmarks(w) == nil {
			t.Fatal("expected landmarks on a city-sized graph")
		}
		sc := g.NewSearchScratch()
		n := g.NumNodes()
		for trial := 0; trial < 10; trial++ {
			dst := NodeID(s.Intn(n))
			trueDist := g.allShortestDistsReverse(dst, w)
			sc.ensure(n, g.NumEdges())
			sc.nextGen()
			sc.prepareALT(dst, w, false)
			if sc.lm == nil {
				t.Fatal("ALT not active after EnsureLandmarks")
			}
			for v := 0; v < n; v++ {
				h := sc.h(NodeID(v))
				if math.IsInf(trueDist[v], 1) {
					continue
				}
				if h > trueDist[v] {
					t.Fatalf("inadmissible heuristic: h(%d)=%v > d(%d,%d)=%v", v, h, v, dst, trueDist[v])
				}
			}
		}
	}
}

func TestReverseEdgesBuiltOncePerGraph(t *testing.T) {
	s := rng.New(407)
	g := GenerateCity(DefaultCity(GridCity), s.Child())
	n := g.NumNodes()
	for trial := 0; trial < 8; trial++ {
		src, dst := NodeID(s.Intn(n)), NodeID(s.Intn(n))
		if _, err := g.AlternativeRoutes(src, dst, 5, 0.4); err != nil {
			t.Fatal(err)
		}
	}
	if builds := g.cachesFor().revBuilds.Load(); builds != 1 {
		t.Fatalf("reverse-edge map built %d times across 8 AlternativeRoutes calls, want 1", builds)
	}
	// The cached slice must agree with the reference map form.
	rev := g.reverseEdges()
	ref := g.reverseEdgeMap()
	for eid := 0; eid < g.NumEdges(); eid++ {
		twin, ok := ref[EdgeID(eid)]
		if !ok {
			twin = -1
		}
		if rev[eid] != twin {
			t.Fatalf("rev[%d] = %d, reference map says %d", eid, rev[eid], twin)
		}
	}
	// Mutation must invalidate: add a node, the map rebuilds exactly once more.
	g.AddNode(geo.Pt(1e6, 1e6))
	g.reverseEdges()
	g.reverseEdges()
	if builds := g.cachesFor().revBuilds.Load(); builds != 1 {
		t.Fatalf("post-mutation rebuild count = %d, want 1 (fresh cache struct)", builds)
	}
}

func TestShortestPathZeroAllocSteadyState(t *testing.T) {
	s := rng.New(408)
	g := GenerateCity(DefaultCity(GridCity), s.Child())
	for _, w := range []Weight{ByLength, ByTime} {
		g.EnsureLandmarks(w)
	}
	sc := g.NewSearchScratch()
	n := g.NumNodes()
	type od struct{ src, dst NodeID }
	ods := make([]od, 32)
	for i := range ods {
		ods[i] = od{NodeID(s.Intn(n)), NodeID(s.Intn(n))}
	}
	buf := make([]EdgeID, 0, 4*n)
	// Warm pass: grows the heap backing array and the lmT cache to steady
	// state before measuring.
	for _, o := range ods {
		var err error
		if buf, _, err = sc.AppendShortestPath(buf[:0], o.src, o.dst, ByLength); err != nil {
			t.Fatal(err)
		}
	}
	i := 0
	allocs := testing.AllocsPerRun(200, func() {
		o := ods[i%len(ods)]
		i++
		buf, _, _ = sc.AppendShortestPath(buf[:0], o.src, o.dst, ByLength)
	})
	if allocs != 0 {
		t.Fatalf("AppendShortestPath allocated %.1f objects/op on a warm scratch, want 0", allocs)
	}
}

func TestPathSetSemantics(t *testing.T) {
	var ps pathSet
	a := []EdgeID{1, 2, 3}
	b := []EdgeID{1, 2, 4}
	if !ps.Add(a) {
		t.Fatal("first Add returned false")
	}
	if ps.Add(append([]EdgeID(nil), a...)) {
		t.Fatal("duplicate Add returned true")
	}
	if !ps.Add(b) {
		t.Fatal("distinct Add returned false")
	}
	if !ps.Has(a) || !ps.Has(b) || ps.Has([]EdgeID{1, 2}) {
		t.Fatal("Has gave wrong membership")
	}
	if ps.Has(nil) {
		t.Fatal("empty sequence reported present before Add")
	}
	if !ps.Add(nil) || !ps.Has(nil) {
		t.Fatal("empty sequence not addable")
	}
}

// BenchmarkPathDedupPathSet and BenchmarkPathDedupStringKey compare the
// engine's hash-based path dedup against the seed's string-key scheme on the
// same workload (satellite: pathKey replacement).
func benchDedupPaths(b *testing.B) []Path {
	b.Helper()
	s := rng.New(409)
	g := GenerateCity(DefaultCity(GridCity), s.Child())
	n := g.NumNodes()
	paths := make([]Path, 0, 64)
	for len(paths) < 64 {
		src, dst := NodeID(s.Intn(n)), NodeID(s.Intn(n))
		ps, err := g.AlternativeRoutes(src, dst, 3, 0.4)
		if err != nil {
			b.Fatal(err)
		}
		paths = append(paths, ps...)
	}
	return paths
}

func BenchmarkPathDedupPathSet(b *testing.B) {
	paths := benchDedupPaths(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var ps pathSet
		dups := 0
		for _, p := range paths {
			if !ps.Add(p.Edges) {
				dups++
			}
		}
		_ = dups
	}
}

func BenchmarkPathDedupStringKey(b *testing.B) {
	paths := benchDedupPaths(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		seen := map[string]bool{}
		dups := 0
		for _, p := range paths {
			if key := pathKey(p); seen[key] {
				dups++
			} else {
				seen[key] = true
			}
		}
		_ = dups
	}
}
