package roadnet

import "math"

// This file implements the contraction-hierarchy query: a bidirectional
// Dijkstra where the forward search only climbs upward CH edges from src and
// the backward search only climbs downward CH edges from dst (toward their
// tails). Strict witnessing (ch.go) guarantees every shortest path of the
// original graph has such an up-down representation, so the best meeting
// node closes an exact shortest path, and unpacking its shortcuts emits the
// original edge sequence.
//
// # The bit-identity contract
//
// The engine promises paths bit-identical to the frozen reference Dijkstra,
// whose tie rule (lowest optimal predecessor EdgeID) is inherently
// left-to-right and not locally decomposable inside a bidirectional search
// over shortcuts. The CH query therefore does not try to re-derive the
// canonical path under ties — it detects them. Whenever the search observes
// two path costs inside the chTieRel band (a relaxation landing within the
// band of an existing label, two meeting nodes with band-equal totals that
// close different CH-edge sequences — see sameMeetPath — or a
// tie-tainted edge from preprocessing), the query reports chTie and the
// engine transparently re-runs it on the canonical ALT/Dijkstra core. The
// band, not exact equality, is what makes detection sound: float addition
// is non-associative, so two paths with bit-equal left-associated sums can
// differ by ulps when summed over shortcut trees. If no band-tie is
// observed the shortest path is unique beyond association error, the
// canonical path and the CH path are the same object, and the recomputed
// left-associated cost sum equals the reference's float-for-float. Jittered
// real-valued graphs (the generated cities, the benchmark ladder) are
// tie-free in practice and run at full CH speed; deliberately tie-heavy
// unit grids delegate and stay bit-identical by construction.
//
// The warm query path performs zero heap allocations: all state lives in a
// generation-stamped chScratch hung off the engine's SearchScratch.

// chActive reports whether a frontier at key must keep settling given the
// best meeting total mu: anything at or below mu, plus the tie band above
// it, can still participate in a tied optimal path.
func chActive(key, mu float64) bool { return key <= mu || chNearEqual(key, mu) }

// chStatus is the outcome of one CH query attempt.
type chStatus int

const (
	chHit         chStatus = iota // unique shortest path found and unpacked
	chTie                         // exact-cost tie observed: delegate
	chUnreachable                 // dst not reachable from src
)

// chScratch is the reusable state of the bidirectional CH query, following
// the SearchScratch generation-stamp pattern: O(1) reset per query, arrays
// zeroed only on uint32 wraparound.
type chScratch struct {
	gen          uint32
	distF, distB []float64
	genF, genB   []uint32
	parF, parB   []int32 // best-known incoming CH edge, -1 at the roots

	heapF, heapB []pqEntry
	chain        []int32 // up-segment CH edges, collected meet→src
	stack        []int32 // shortcut unpacking stack
	cmpA, cmpB   []int32 // candidate/incumbent CH-edge sequences (tie check)
}

// ensure sizes the scratch for n nodes.
func (cs *chScratch) ensure(n int) {
	if len(cs.distF) < n {
		cs.distF = make([]float64, n)
		cs.distB = make([]float64, n)
		cs.genF = make([]uint32, n)
		cs.genB = make([]uint32, n)
		cs.parF = make([]int32, n)
		cs.parB = make([]int32, n)
	}
}

// nextGen starts a new query generation.
func (cs *chScratch) nextGen() {
	cs.gen++
	if cs.gen == 0 {
		for i := range cs.genF {
			cs.genF[i] = 0
			cs.genB[i] = 0
		}
		cs.gen = 1
	}
}

// pathEdges collects the full src→dst CH-edge sequence of the path that
// meets at u — forward parent chain reversed into travel order, then the
// backward chain — into out, reusing its backing.
func (cs *chScratch) pathEdges(h *Hierarchy, u NodeID, out []int32) []int32 {
	out = out[:0]
	for x := u; cs.parF[x] >= 0; {
		ei := cs.parF[x]
		out = append(out, ei)
		x = NodeID(h.edges[ei].from)
	}
	for i, j := 0, len(out)-1; i < j; i, j = i+1, j-1 {
		out[i], out[j] = out[j], out[i]
	}
	for x := u; cs.parB[x] >= 0; {
		ei := cs.parB[x]
		out = append(out, ei)
		x = NodeID(h.edges[ei].to)
	}
	return out
}

// sameMeetPath reports whether the path meeting at u and the incumbent
// meeting at m are the same CH-edge sequence. Band-equal meeting candidates
// on one physical path are routine — every node the two searches share on
// the optimal path closes the same path with an association-error total,
// which happens systematically inside the uncontracted core (both
// directions traverse the same residual arcs) — and must not be mistaken
// for a genuine tie. Identical CH-edge sequences unpack to identical
// original paths, so skipping them cannot change the answer; any genuinely
// different band-equal path still compares unequal against the incumbent
// and delegates.
func (cs *chScratch) sameMeetPath(h *Hierarchy, u, m NodeID) bool {
	cs.cmpA = cs.pathEdges(h, u, cs.cmpA)
	cs.cmpB = cs.pathEdges(h, m, cs.cmpB)
	if len(cs.cmpA) != len(cs.cmpB) {
		return false
	}
	for i, e := range cs.cmpA {
		if e != cs.cmpB[i] {
			return false
		}
	}
	return true
}

// chQuery answers src→dst (src != dst) on the attached hierarchy h,
// appending the unpacked original-edge sequence to buf on a hit. The
// returned cost is recomputed as the left-associated sum over the emitted
// edges — the exact float the reference Dijkstra's distance label carries.
func (s *SearchScratch) chQuery(h *Hierarchy, buf []EdgeID, src, dst NodeID, w Weight) ([]EdgeID, float64, chStatus) {
	cs := s.chs
	if cs == nil {
		cs = &chScratch{}
		s.chs = cs
	}
	cs.ensure(h.n)
	cs.nextGen()
	gen := cs.gen
	cs.heapF = cs.heapF[:0]
	cs.heapB = cs.heapB[:0]
	cs.distF[src] = 0
	cs.genF[src] = gen
	cs.parF[src] = -1
	cs.heapF = pushEntry(cs.heapF, 0, src)
	cs.distB[dst] = 0
	cs.genB[dst] = gen
	cs.parB[dst] = -1
	cs.heapB = pushEntry(cs.heapB, 0, dst)

	mu := math.Inf(1)
	meet := int32(-1)
	tie := false

	// Both directions keep settling while their frontier is at or below
	// the best meeting total plus the tie band. Popping through the whole
	// band (not stopping strictly below μ) is what makes tie detection
	// complete: every node on any optimal up-down representation has a
	// label within the band of μ*, so all competing representations are
	// fully explored and any ambiguity surfaces as a band-equal
	// relaxation or a band-equal meeting candidate.
	for {
		fActive := len(cs.heapF) > 0 && chActive(cs.heapF[0].key, mu)
		bActive := len(cs.heapB) > 0 && chActive(cs.heapB[0].key, mu)
		if !fActive && !bActive {
			break
		}
		forward := fActive && (!bActive || cs.heapF[0].key <= cs.heapB[0].key)
		if forward {
			var it pqEntry
			cs.heapF, it = popEntry(cs.heapF)
			u := it.node
			if it.key > cs.distF[u] {
				continue // stale
			}
			if cs.genB[u] == gen {
				cand := cs.distF[u] + cs.distB[u]
				if meet >= 0 && meet != int32(u) && chNearEqual(cand, mu) &&
					!cs.sameMeetPath(h, u, NodeID(meet)) {
					tie = true
				}
				if cand < mu {
					mu, meet = cand, int32(u)
				}
			}
			for i := h.upOff[u]; i < h.upOff[u+1]; i++ {
				if cs.relaxCH(h, i, true, it.key, gen) {
					tie = true
				}
			}
		} else {
			var it pqEntry
			cs.heapB, it = popEntry(cs.heapB)
			u := it.node
			if it.key > cs.distB[u] {
				continue
			}
			if cs.genF[u] == gen {
				cand := cs.distF[u] + cs.distB[u]
				if meet >= 0 && meet != int32(u) && chNearEqual(cand, mu) &&
					!cs.sameMeetPath(h, u, NodeID(meet)) {
					tie = true
				}
				if cand < mu {
					mu, meet = cand, int32(u)
				}
			}
			for i := h.downOff[u]; i < h.downOff[u+1]; i++ {
				if cs.relaxCH(h, i, false, it.key, gen) {
					tie = true
				}
			}
		}
	}

	if meet < 0 {
		return buf, 0, chUnreachable
	}
	if tie {
		return buf, 0, chTie
	}

	// Unpack: up-segment src→meet (parF chain is meet→src, reversed via
	// cs.chain), then down-segment meet→dst (parB chain is already in
	// travel order).
	start := len(buf)
	cs.chain = cs.chain[:0]
	for x := NodeID(meet); cs.parF[x] >= 0; {
		ei := cs.parF[x]
		cs.chain = append(cs.chain, ei)
		x = NodeID(h.edges[ei].from)
	}
	for i := len(cs.chain) - 1; i >= 0; i-- {
		buf = h.unpackAppend(buf, cs.chain[i], &cs.stack)
	}
	for x := NodeID(meet); cs.parB[x] >= 0; {
		ei := cs.parB[x]
		buf = h.unpackAppend(buf, ei, &cs.stack)
		x = NodeID(h.edges[ei].to)
	}

	// Recompute the cost as the reference does: left-associated over the
	// original edges, with the same per-edge cost expression as the search
	// cores.
	g := s.g
	var cost float64
	for _, eid := range buf[start:] {
		e := &g.Edges[eid]
		if w == ByTime {
			cost += e.Length / e.Speed
		} else {
			cost += e.Length
		}
	}
	return buf, cost, chHit
}

// relaxCH relaxes the CSR arc at index i (upward when fwd, downward
// otherwise) from a node settled at key du. It reports whether the
// relaxation observed an exact-cost tie (equal label or tainted edge).
func (cs *chScratch) relaxCH(h *Hierarchy, i int32, fwd bool, du float64, gen uint32) bool {
	var ei int32
	if fwd {
		ei = h.upArc[i]
	} else {
		ei = h.downArc[i]
	}
	e := &h.edges[ei]
	var v NodeID
	if fwd {
		v = NodeID(e.to)
	} else {
		v = NodeID(e.from)
	}
	nd := du + e.weight
	tie := h.taint[ei]
	if fwd {
		if cs.genF[v] != gen {
			cs.distF[v] = nd
			cs.genF[v] = gen
			cs.parF[v] = ei
			cs.heapF = pushEntry(cs.heapF, nd, v)
			return tie
		}
		if chNearEqual(nd, cs.distF[v]) {
			tie = true
		}
		if nd < cs.distF[v] {
			cs.distF[v] = nd
			cs.parF[v] = ei
			cs.heapF = pushEntry(cs.heapF, nd, v)
		}
	} else {
		if cs.genB[v] != gen {
			cs.distB[v] = nd
			cs.genB[v] = gen
			cs.parB[v] = ei
			cs.heapB = pushEntry(cs.heapB, nd, v)
			return tie
		}
		if chNearEqual(nd, cs.distB[v]) {
			tie = true
		}
		if nd < cs.distB[v] {
			cs.distB[v] = nd
			cs.parB[v] = ei
			cs.heapB = pushEntry(cs.heapB, nd, v)
		}
	}
	return tie
}

// unpackAppend expands one CH edge into its original-edge sequence,
// appending to buf. Iterative with an explicit stack (right child pushed
// first so left pops first), reusing the caller's stack backing.
func (h *Hierarchy) unpackAppend(buf []EdgeID, ei int32, stack *[]int32) []EdgeID {
	st := (*stack)[:0]
	st = append(st, ei)
	for len(st) > 0 {
		e := st[len(st)-1]
		st = st[:len(st)-1]
		ed := &h.edges[e]
		if ed.orig >= 0 {
			buf = append(buf, EdgeID(ed.orig))
			continue
		}
		st = append(st, ed.right, ed.left)
	}
	*stack = st
	return buf
}

// RawQuery runs the bidirectional CH search for the src→dst distance
// without delegation or unpacking, reporting the distance (as summed over
// shortcut weights), whether dst was reached, and whether the search
// observed an exact-cost tie. Exposed for differential tests: on graphs
// with exact arithmetic (unit grids) the raw distance must equal the
// reference Dijkstra's even when path extraction would delegate.
func (h *Hierarchy) RawQuery(src, dst NodeID) (dist float64, reached, tied bool) {
	if int(src) >= h.n || int(dst) >= h.n || src < 0 || dst < 0 {
		return 0, false, false
	}
	if src == dst {
		return 0, true, false
	}
	cs := &chScratch{}
	cs.ensure(h.n)
	cs.nextGen()
	gen := cs.gen
	cs.distF[src] = 0
	cs.genF[src] = gen
	cs.parF[src] = -1
	cs.heapF = pushEntry(cs.heapF, 0, src)
	cs.distB[dst] = 0
	cs.genB[dst] = gen
	cs.parB[dst] = -1
	cs.heapB = pushEntry(cs.heapB, 0, dst)
	mu := math.Inf(1)
	meet := int32(-1)
	for {
		fActive := len(cs.heapF) > 0 && chActive(cs.heapF[0].key, mu)
		bActive := len(cs.heapB) > 0 && chActive(cs.heapB[0].key, mu)
		if !fActive && !bActive {
			break
		}
		forward := fActive && (!bActive || cs.heapF[0].key <= cs.heapB[0].key)
		var it pqEntry
		if forward {
			cs.heapF, it = popEntry(cs.heapF)
			if it.key > cs.distF[it.node] {
				continue
			}
		} else {
			cs.heapB, it = popEntry(cs.heapB)
			if it.key > cs.distB[it.node] {
				continue
			}
		}
		u := it.node
		if (forward && cs.genB[u] == gen) || (!forward && cs.genF[u] == gen) {
			cand := cs.distF[u] + cs.distB[u]
			if meet >= 0 && meet != int32(u) && chNearEqual(cand, mu) &&
				!cs.sameMeetPath(h, u, NodeID(meet)) {
				tied = true
			}
			if cand < mu {
				mu, meet = cand, int32(u)
			}
		}
		if forward {
			for i := h.upOff[u]; i < h.upOff[u+1]; i++ {
				if cs.relaxCH(h, i, true, it.key, gen) {
					tied = true
				}
			}
		} else {
			for i := h.downOff[u]; i < h.downOff[u+1]; i++ {
				if cs.relaxCH(h, i, false, it.key, gen) {
					tied = true
				}
			}
		}
	}
	if meet < 0 {
		return 0, false, tied
	}
	return mu, true, tied
}
