package roadnet

import "repro/internal/telemetry"

// AlternativeRoutes returns up to k diverse routes from src to dst, the way
// commercial navigation systems pick alternatives: the first route is the
// true shortest path; each subsequent route is the shortest path after the
// edges of all previously returned routes have been penalized (their cost
// multiplied by 1 + penalty per prior use, both directions). Unlike pure
// Yen K-shortest paths — which on grid networks returns many equal-length
// permutations of the same corridor — penalization yields alternatives
// through genuinely different corridors, with meaningful detour and
// congestion differences.
//
// penalty must be positive; 0.3–0.6 gives Google-Maps-like diversity. The
// returned paths are distinct; fewer than k are returned when the network
// runs out of sufficiently different corridors. An error is returned only
// when no route exists at all.
//
// The computation runs on a pooled SearchScratch: goal-directed searches
// (penalization only raises edge costs above their lengths, so the ByLength
// landmark bounds stay admissible), stamped edge-use counters instead of a
// per-call map, and the graph-cached reverse-edge table instead of a per-call
// rebuild. Results are bit-identical to ReferenceAlternativeRoutes.
func (g *Graph) AlternativeRoutes(src, dst NodeID, k int, penalty float64) ([]Path, error) {
	if k <= 0 {
		return nil, nil
	}
	routeQueries.Inc()
	span := telemetry.StartSpan(routeQuerySeconds)
	defer span.End()

	s, c := g.getScratch()
	defer g.putScratch(c, s)

	first, err := s.ShortestPath(src, dst, ByLength)
	if err != nil {
		return nil, err
	}
	paths := []Path{first}
	if src == dst || k == 1 {
		return paths, nil
	}
	s.ensure(g.NumNodes(), g.NumEdges())
	s.resetUses()
	reverse := g.reverseEdges()
	bump := func(p Path) {
		for _, eid := range p.Edges {
			s.bumpUse(eid)
			if rev := reverse[eid]; rev >= 0 {
				s.bumpUse(rev)
			}
		}
	}
	bump(first)
	var seen pathSet
	seen.Add(first.Edges)
	// A few extra attempts beyond k cover the case where penalization
	// re-discovers an already-known path before diverging.
	for attempts := 0; len(paths) < k && attempts < 3*k; attempts++ {
		p, err := s.shortestPath(src, dst, searchOpts{penalized: true, penalty: penalty})
		if err != nil {
			break
		}
		bump(p)
		if seen.Add(p.Edges) {
			paths = append(paths, p)
		}
	}
	return paths, nil
}
