package roadnet

import (
	"container/heap"
	"fmt"
	"math"
)

// AlternativeRoutes returns up to k diverse routes from src to dst, the way
// commercial navigation systems pick alternatives: the first route is the
// true shortest path; each subsequent route is the shortest path after the
// edges of all previously returned routes have been penalized (their cost
// multiplied by 1 + penalty per prior use, both directions). Unlike pure
// Yen K-shortest paths — which on grid networks returns many equal-length
// permutations of the same corridor — penalization yields alternatives
// through genuinely different corridors, with meaningful detour and
// congestion differences.
//
// penalty must be positive; 0.3–0.6 gives Google-Maps-like diversity. The
// returned paths are distinct; fewer than k are returned when the network
// runs out of sufficiently different corridors. An error is returned only
// when no route exists at all.
func (g *Graph) AlternativeRoutes(src, dst NodeID, k int, penalty float64) ([]Path, error) {
	if k <= 0 {
		return nil, nil
	}
	first, err := g.ShortestPath(src, dst, ByLength)
	if err != nil {
		return nil, err
	}
	paths := []Path{first}
	if src == dst || k == 1 {
		return paths, nil
	}
	uses := make(map[EdgeID]int)
	reverse := g.reverseEdgeMap()
	bump := func(p Path) {
		for _, eid := range p.Edges {
			uses[eid]++
			if rev, ok := reverse[eid]; ok {
				uses[rev]++
			}
		}
	}
	bump(first)
	seen := map[string]bool{pathKey(first): true}
	// A few extra attempts beyond k cover the case where penalization
	// re-discovers an already-known path before diverging.
	for attempts := 0; len(paths) < k && attempts < 3*k; attempts++ {
		p, err := g.shortestPathPenalized(src, dst, uses, penalty)
		if err != nil {
			break
		}
		bump(p)
		if key := pathKey(p); !seen[key] {
			seen[key] = true
			paths = append(paths, p)
		}
	}
	return paths, nil
}

// reverseEdgeMap maps each edge to its opposite-direction twin, if any.
func (g *Graph) reverseEdgeMap() map[EdgeID]EdgeID {
	byPair := make(map[[2]NodeID]EdgeID, len(g.Edges))
	for _, e := range g.Edges {
		byPair[[2]NodeID{e.From, e.To}] = e.ID
	}
	rev := make(map[EdgeID]EdgeID, len(g.Edges))
	for _, e := range g.Edges {
		if twin, ok := byPair[[2]NodeID{e.To, e.From}]; ok {
			rev[e.ID] = twin
		}
	}
	return rev
}

// shortestPathPenalized is Dijkstra over cost(e) = Length·(1 + penalty·uses[e]).
func (g *Graph) shortestPathPenalized(src, dst NodeID, uses map[EdgeID]int, penalty float64) (Path, error) {
	n := g.NumNodes()
	dist := make([]float64, n)
	prevEdge := make([]EdgeID, n)
	done := make([]bool, n)
	for i := range dist {
		dist[i] = math.Inf(1)
		prevEdge[i] = -1
	}
	dist[src] = 0
	h := &pq{{node: src, dist: 0}}
	for h.Len() > 0 {
		it := heap.Pop(h).(pqItem)
		u := it.node
		if done[u] || it.dist > dist[u] {
			continue
		}
		done[u] = true
		if u == dst {
			break
		}
		for _, eid := range g.out[u] {
			e := g.Edges[eid]
			cost := e.Length * (1 + penalty*float64(uses[eid]))
			if nd := dist[u] + cost; nd < dist[e.To] {
				dist[e.To] = nd
				prevEdge[e.To] = eid
				heap.Push(h, pqItem{node: e.To, dist: nd})
			}
		}
	}
	if math.IsInf(dist[dst], 1) {
		return Path{}, fmt.Errorf("roadnet: node %d unreachable from %d", dst, src)
	}
	var rev []EdgeID
	for at := dst; at != src; {
		eid := prevEdge[at]
		rev = append(rev, eid)
		at = g.Edges[eid].From
	}
	edges := make([]EdgeID, len(rev))
	for i := range rev {
		edges[i] = rev[len(rev)-1-i]
	}
	return g.NewPath(edges)
}
