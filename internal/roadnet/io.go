package roadnet

import (
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/geo"
)

// jsonGraph is the versioned serialized form of a Graph.
type jsonGraph struct {
	Version int        `json:"version"`
	Nodes   []jsonNode `json:"nodes"`
	Edges   []jsonEdge `json:"edges"`
}

type jsonNode struct {
	X float64 `json:"x"`
	Y float64 `json:"y"`
}

type jsonEdge struct {
	From      int     `json:"from"`
	To        int     `json:"to"`
	Length    float64 `json:"length"`
	Speed     float64 `json:"speed"`
	FreeSpeed float64 `json:"free_speed"`
}

// graphCodecVersion is the current schema version.
const graphCodecVersion = 1

// WriteJSON serializes the graph so externally-built road networks (e.g.
// extracted from OpenStreetMap) can be loaded with ReadGraphJSON.
func (g *Graph) WriteJSON(w io.Writer) error {
	doc := jsonGraph{Version: graphCodecVersion}
	for _, n := range g.Nodes {
		doc.Nodes = append(doc.Nodes, jsonNode{X: n.Pos.X, Y: n.Pos.Y})
	}
	for _, e := range g.Edges {
		doc.Edges = append(doc.Edges, jsonEdge{
			From: int(e.From), To: int(e.To),
			Length: e.Length, Speed: e.Speed, FreeSpeed: e.FreeSpeed,
		})
	}
	enc := json.NewEncoder(w)
	return enc.Encode(doc)
}

// ReadGraphJSON deserializes a graph written by WriteJSON, validating every
// edge as it is added.
func ReadGraphJSON(r io.Reader) (*Graph, error) {
	var doc jsonGraph
	if err := json.NewDecoder(r).Decode(&doc); err != nil {
		return nil, fmt.Errorf("roadnet: decoding graph: %w", err)
	}
	if doc.Version != graphCodecVersion {
		return nil, fmt.Errorf("roadnet: unsupported graph schema version %d (want %d)", doc.Version, graphCodecVersion)
	}
	g := NewGraph()
	for _, n := range doc.Nodes {
		g.AddNode(geo.Pt(n.X, n.Y))
	}
	for i, e := range doc.Edges {
		if _, err := g.AddEdge(NodeID(e.From), NodeID(e.To), e.Length, e.Speed, e.FreeSpeed); err != nil {
			return nil, fmt.Errorf("roadnet: edge %d: %w", i, err)
		}
	}
	return g, nil
}
