package roadnet

import "repro/internal/telemetry"

// Routing-engine telemetry on the default registry. Handles are resolved
// once at package init; the hot paths only touch atomics.
var (
	// routeQueries counts AlternativeRoutes computations (the unit of work
	// behind one user's recommended route set).
	routeQueries = telemetry.Default().Counter("roadnet_route_queries_total")
	// routeQuerySeconds is the latency histogram of those computations.
	routeQuerySeconds = telemetry.Default().Histogram("roadnet_route_query_seconds", nil)
	// Route-cache effectiveness: hits, misses (the computing caller), and
	// singleflight waits (duplicate concurrent requests that piggybacked on
	// an in-flight computation instead of recomputing).
	routeCacheHits   = telemetry.Default().Counter("roadnet_route_cache_hits_total")
	routeCacheMisses = telemetry.Default().Counter("roadnet_route_cache_misses_total")
	routeCacheWaits  = telemetry.Default().Counter("roadnet_route_cache_singleflight_waits_total")
	// landmarkBuilds counts ALT table constructions (once per graph+weight).
	landmarkBuilds = telemetry.Default().Counter("roadnet_landmark_builds_total")
	// landmarkPruneRatio is the fraction of the graph the last goal-directed
	// query did NOT settle — the work A* saved over plain Dijkstra.
	landmarkPruneRatio = telemetry.Default().Gauge("roadnet_landmark_prune_ratio")
	// chBuilds counts contraction-hierarchy preprocessings.
	chBuilds = telemetry.Default().Counter("roadnet_ch_builds_total")
	// chQueries counts engine queries attempted on an attached hierarchy;
	// chFallbacks counts the subset that observed an exact-cost tie and were
	// delegated to the canonical ALT/Dijkstra engine to preserve the
	// lowest-EdgeID path contract.
	chQueries   = telemetry.Default().Counter("roadnet_ch_queries_total")
	chFallbacks = telemetry.Default().Counter("roadnet_ch_tie_fallbacks_total")
)
