// Package roadnet implements the road-network substrate: weighted road
// graphs, shortest paths (binary-heap Dijkstra), Yen's K-shortest simple
// paths (the offline stand-in for the Google Maps route recommendation used
// in the paper's evaluation), synthetic city generators for the three
// dataset geometries, and the per-route congestion index.
package roadnet

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"repro/internal/geo"
)

// NodeID identifies a node (intersection) in a Graph.
type NodeID int

// EdgeID identifies a directed edge (road segment) in a Graph.
type EdgeID int

// Node is a road intersection.
type Node struct {
	ID  NodeID
	Pos geo.Point
}

// Edge is a directed road segment. Length is in meters; Speed is the current
// average traversal speed in m/s (free-flow speed scaled by local
// congestion); FreeSpeed is the uncongested speed.
type Edge struct {
	ID        EdgeID
	From, To  NodeID
	Length    float64
	Speed     float64
	FreeSpeed float64
}

// TravelTime returns the expected traversal time of the edge in seconds.
func (e Edge) TravelTime() float64 {
	if e.Speed <= 0 {
		return math.Inf(1)
	}
	return e.Length / e.Speed
}

// CongestionFactor returns Speed relative to FreeSpeed in (0,1]; lower means
// more congested.
func (e Edge) CongestionFactor() float64 {
	if e.FreeSpeed <= 0 {
		return 1
	}
	return e.Speed / e.FreeSpeed
}

// Graph is a directed road graph. Nodes and Edges are indexed by their IDs.
//
// Derived structures (reverse-edge map, in-adjacency, landmark tables, the
// query-scratch pool) are built lazily on first use and cached; mutating the
// graph (AddNode/AddEdge/AddRoad) invalidates them. Queries are safe for
// concurrent use; mutation is not safe concurrently with queries.
type Graph struct {
	Nodes []Node
	Edges []Edge
	out   [][]EdgeID // adjacency: out[n] lists edges leaving node n

	caches atomic.Pointer[graphCaches]
}

// graphCaches holds every lazily built derived structure. The whole struct
// is swapped out (reset to nil) on mutation, so a query that raced a
// mutation at worst keeps working on the pre-mutation view it already
// resolved.
type graphCaches struct {
	revOnce   sync.Once
	rev       []EdgeID // rev[e] = opposite-direction twin of e, or -1
	revBuilds atomic.Uint64

	inOnce sync.Once
	in     [][]EdgeID // in[n] lists edges entering node n

	lmOnce [2]sync.Once // indexed by Weight
	lm     [2]*Landmarks

	// ch holds the attached contraction hierarchy per weight (nil when
	// none). Living on the cache struct means any mutation detaches it
	// along with every other derived structure, so a stale hierarchy can
	// never answer queries on a changed graph.
	ch [2]atomic.Pointer[Hierarchy]

	scratch sync.Pool // *SearchScratch
}

// cachesFor returns the current cache struct, installing one if none exists.
// Safe for concurrent use: on a race, one struct wins the CAS and everyone
// converges on it, so each inner sync.Once still builds exactly once.
func (g *Graph) cachesFor() *graphCaches {
	if c := g.caches.Load(); c != nil {
		return c
	}
	c := &graphCaches{}
	c.scratch.New = func() any { return &SearchScratch{g: g} }
	if g.caches.CompareAndSwap(nil, c) {
		return c
	}
	return g.caches.Load()
}

// invalidate drops every derived structure; called on mutation.
func (g *Graph) invalidate() { g.caches.Store(nil) }

// NewGraph returns an empty graph.
func NewGraph() *Graph { return &Graph{} }

// Reserve pre-sizes the node and edge backing arrays. Generators that know
// their output size call this once so million-node builds stay O(|V|) in
// memory with no growth-reallocation spikes.
func (g *Graph) Reserve(nodes, edges int) {
	if cap(g.Nodes)-len(g.Nodes) < nodes {
		grown := make([]Node, len(g.Nodes), len(g.Nodes)+nodes)
		copy(grown, g.Nodes)
		g.Nodes = grown
		out := make([][]EdgeID, len(g.out), len(g.out)+nodes)
		copy(out, g.out)
		g.out = out
	}
	if cap(g.Edges)-len(g.Edges) < edges {
		grown := make([]Edge, len(g.Edges), len(g.Edges)+edges)
		copy(grown, g.Edges)
		g.Edges = grown
	}
}

// AttachHierarchy installs a contraction hierarchy built by BuildHierarchy
// over this graph. Plain (un-banned, un-penalized) engine queries under the
// hierarchy's weight then run on it automatically; every other query mode,
// and any query whose exact-cost tie the hierarchy cannot canonically
// resolve, falls back to the ALT/Dijkstra core. Mutating the graph detaches
// the hierarchy.
func (g *Graph) AttachHierarchy(h *Hierarchy) error {
	if h == nil {
		return fmt.Errorf("roadnet: nil hierarchy")
	}
	if h.n != g.NumNodes() {
		return fmt.Errorf("roadnet: hierarchy built for %d nodes, graph has %d", h.n, g.NumNodes())
	}
	g.cachesFor().ch[h.w].Store(h)
	return nil
}

// DetachHierarchy removes the attached hierarchy for w, if any.
func (g *Graph) DetachHierarchy(w Weight) {
	if c := g.caches.Load(); c != nil {
		c.ch[w].Store(nil)
	}
}

// AttachedHierarchy returns the hierarchy currently attached for w, or nil.
func (g *Graph) AttachedHierarchy(w Weight) *Hierarchy { return g.hierarchyFor(w) }

// hierarchyFor is the query-path accessor: two atomic loads, no cache
// construction.
func (g *Graph) hierarchyFor(w Weight) *Hierarchy {
	c := g.caches.Load()
	if c == nil {
		return nil
	}
	return c.ch[w].Load()
}

// AddNode appends a node at the given position and returns its ID.
func (g *Graph) AddNode(p geo.Point) NodeID {
	id := NodeID(len(g.Nodes))
	g.Nodes = append(g.Nodes, Node{ID: id, Pos: p})
	g.out = append(g.out, nil)
	g.invalidate()
	return id
}

// AddEdge appends a directed edge and returns its ID. Length must be
// positive; speed and freeSpeed must be positive.
func (g *Graph) AddEdge(from, to NodeID, length, speed, freeSpeed float64) (EdgeID, error) {
	if int(from) >= len(g.Nodes) || int(to) >= len(g.Nodes) || from < 0 || to < 0 {
		return 0, fmt.Errorf("roadnet: edge endpoints out of range: %d->%d", from, to)
	}
	if length <= 0 || speed <= 0 || freeSpeed <= 0 {
		return 0, fmt.Errorf("roadnet: nonpositive edge parameters: len=%v speed=%v free=%v", length, speed, freeSpeed)
	}
	id := EdgeID(len(g.Edges))
	g.Edges = append(g.Edges, Edge{ID: id, From: from, To: to, Length: length, Speed: speed, FreeSpeed: freeSpeed})
	g.out[from] = append(g.out[from], id)
	g.invalidate()
	return id, nil
}

// reverseEdges returns the cached edge→twin map: reverseEdges()[e] is the
// opposite-direction edge of e, or -1 when the road is one-way. Built once
// per graph (not once per AlternativeRoutes call, as it used to be).
func (g *Graph) reverseEdges() []EdgeID {
	c := g.cachesFor()
	c.revOnce.Do(func() {
		c.revBuilds.Add(1)
		byPair := make(map[[2]NodeID]EdgeID, len(g.Edges))
		for _, e := range g.Edges {
			byPair[[2]NodeID{e.From, e.To}] = e.ID
		}
		rev := make([]EdgeID, len(g.Edges))
		for _, e := range g.Edges {
			rev[e.ID] = -1
			if twin, ok := byPair[[2]NodeID{e.To, e.From}]; ok {
				rev[e.ID] = twin
			}
		}
		c.rev = rev
	})
	return c.rev
}

// inEdges returns the cached in-adjacency: inEdges()[n] lists the edges
// entering node n. Used by the backward Dijkstra of the landmark tables.
func (g *Graph) inEdges() [][]EdgeID {
	c := g.cachesFor()
	c.inOnce.Do(func() {
		in := make([][]EdgeID, len(g.Nodes))
		for _, e := range g.Edges {
			in[e.To] = append(in[e.To], e.ID)
		}
		c.in = in
	})
	return c.in
}

// getScratch returns a pooled SearchScratch sized for this graph; return it
// with putScratch. The pool lives on the cache struct, so mutation retires
// stale scratches along with everything else.
func (g *Graph) getScratch() (*SearchScratch, *graphCaches) {
	c := g.cachesFor()
	s := c.scratch.Get().(*SearchScratch)
	s.g = g
	return s, c
}

func (g *Graph) putScratch(c *graphCaches, s *SearchScratch) { c.scratch.Put(s) }

// AddRoad adds a bidirectional road (two directed edges) whose length is the
// Euclidean distance between the endpoints.
func (g *Graph) AddRoad(a, b NodeID, speed, freeSpeed float64) error {
	l := g.Nodes[a].Pos.Dist(g.Nodes[b].Pos)
	if _, err := g.AddEdge(a, b, l, speed, freeSpeed); err != nil {
		return err
	}
	_, err := g.AddEdge(b, a, l, speed, freeSpeed)
	return err
}

// Out returns the IDs of edges leaving node n.
func (g *Graph) Out(n NodeID) []EdgeID { return g.out[n] }

// NumNodes returns the node count.
func (g *Graph) NumNodes() int { return len(g.Nodes) }

// NumEdges returns the directed-edge count.
func (g *Graph) NumEdges() int { return len(g.Edges) }

// Pos returns the position of node n.
func (g *Graph) Pos(n NodeID) geo.Point { return g.Nodes[n].Pos }

// NearestNode returns the node closest to p. It panics on an empty graph.
func (g *Graph) NearestNode(p geo.Point) NodeID {
	if len(g.Nodes) == 0 {
		panic("roadnet: NearestNode on empty graph")
	}
	best, bd := NodeID(0), math.Inf(1)
	for _, n := range g.Nodes {
		if d := n.Pos.Dist(p); d < bd {
			best, bd = n.ID, d
		}
	}
	return best
}

// Path is a sequence of edges forming a walk through the graph, plus its
// cached aggregate measures.
type Path struct {
	Edges  []EdgeID
	Nodes  []NodeID // Nodes[i] precedes Edges[i]; len(Nodes) == len(Edges)+1
	Length float64  // total length in meters
	Time   float64  // total travel time in seconds
}

// NewPath assembles a Path from an edge sequence, validating continuity.
func (g *Graph) NewPath(edges []EdgeID) (Path, error) {
	if len(edges) == 0 {
		return Path{}, fmt.Errorf("roadnet: empty path")
	}
	p := Path{Edges: append([]EdgeID(nil), edges...)}
	p.Nodes = make([]NodeID, 0, len(edges)+1)
	p.Nodes = append(p.Nodes, g.Edges[edges[0]].From)
	for i, eid := range edges {
		e := g.Edges[eid]
		if e.From != p.Nodes[len(p.Nodes)-1] {
			return Path{}, fmt.Errorf("roadnet: discontinuous path at edge %d (index %d)", eid, i)
		}
		p.Nodes = append(p.Nodes, e.To)
		p.Length += e.Length
		p.Time += e.TravelTime()
	}
	return p, nil
}

// Polyline returns the path geometry as a polyline of node positions.
func (g *Graph) Polyline(p Path) geo.Polyline {
	pl := make(geo.Polyline, 0, len(p.Nodes))
	for _, n := range p.Nodes {
		pl = append(pl, g.Pos(n))
	}
	return pl
}

// Congestion returns the length-weighted congestion index of a path:
// the mean over edges of (FreeSpeed/Speed - 1) weighted by edge length,
// scaled by 10 so typical values land in the paper's 0..~15 range. A path
// entirely at free-flow speed has congestion 0.
func (g *Graph) Congestion(p Path) float64 {
	if p.Length == 0 {
		return 0
	}
	var acc float64
	for _, eid := range p.Edges {
		e := g.Edges[eid]
		acc += e.Length * (e.FreeSpeed/e.Speed - 1)
	}
	return 10 * acc / p.Length
}

// PathEqual reports whether two paths traverse the same edge sequence.
func PathEqual(a, b Path) bool {
	if len(a.Edges) != len(b.Edges) {
		return false
	}
	for i := range a.Edges {
		if a.Edges[i] != b.Edges[i] {
			return false
		}
	}
	return true
}
