package roadnet

import (
	"math"
	"testing"

	"repro/internal/geo"
)

// lineGraph builds a simple 4-node path graph 0-1-2-3 with unit spacing.
func lineGraph(t *testing.T) *Graph {
	t.Helper()
	g := NewGraph()
	for i := 0; i < 4; i++ {
		g.AddNode(geo.Pt(float64(i)*100, 0))
	}
	for i := 0; i < 3; i++ {
		if err := g.AddRoad(NodeID(i), NodeID(i+1), 10, 10); err != nil {
			t.Fatal(err)
		}
	}
	return g
}

func TestAddNodeEdge(t *testing.T) {
	g := NewGraph()
	a := g.AddNode(geo.Pt(0, 0))
	b := g.AddNode(geo.Pt(100, 0))
	if g.NumNodes() != 2 {
		t.Fatalf("NumNodes = %d", g.NumNodes())
	}
	id, err := g.AddEdge(a, b, 100, 10, 12)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 1 {
		t.Fatalf("NumEdges = %d", g.NumEdges())
	}
	e := g.Edges[id]
	if e.From != a || e.To != b || e.Length != 100 {
		t.Errorf("edge = %+v", e)
	}
	if got := e.TravelTime(); got != 10 {
		t.Errorf("TravelTime = %v", got)
	}
	if got := e.CongestionFactor(); math.Abs(got-10.0/12.0) > 1e-12 {
		t.Errorf("CongestionFactor = %v", got)
	}
	if out := g.Out(a); len(out) != 1 || out[0] != id {
		t.Errorf("Out = %v", out)
	}
}

func TestAddEdgeValidation(t *testing.T) {
	g := NewGraph()
	a := g.AddNode(geo.Pt(0, 0))
	if _, err := g.AddEdge(a, NodeID(5), 1, 1, 1); err == nil {
		t.Error("out-of-range endpoint accepted")
	}
	if _, err := g.AddEdge(a, a, 0, 1, 1); err == nil {
		t.Error("zero length accepted")
	}
	if _, err := g.AddEdge(a, a, 1, -1, 1); err == nil {
		t.Error("negative speed accepted")
	}
}

func TestEdgeDegenerateMeasures(t *testing.T) {
	e := Edge{Length: 100, Speed: 0, FreeSpeed: 0}
	if !math.IsInf(e.TravelTime(), 1) {
		t.Error("TravelTime with zero speed should be +Inf")
	}
	if e.CongestionFactor() != 1 {
		t.Error("CongestionFactor with zero free speed should be 1")
	}
}

func TestNewPathContinuity(t *testing.T) {
	g := lineGraph(t)
	// Edges 0 (0->1) and 2 (1->2) are continuous; 0 and 4 (2->3) are not.
	p, err := g.NewPath([]EdgeID{0, 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Nodes) != 3 || p.Nodes[0] != 0 || p.Nodes[2] != 2 {
		t.Errorf("path nodes = %v", p.Nodes)
	}
	if math.Abs(p.Length-200) > 1e-9 {
		t.Errorf("path length = %v", p.Length)
	}
	if math.Abs(p.Time-20) > 1e-9 {
		t.Errorf("path time = %v", p.Time)
	}
	if _, err := g.NewPath([]EdgeID{0, 4}); err == nil {
		t.Error("discontinuous path accepted")
	}
	if _, err := g.NewPath(nil); err == nil {
		t.Error("empty path accepted")
	}
}

func TestNearestNode(t *testing.T) {
	g := lineGraph(t)
	if n := g.NearestNode(geo.Pt(120, 5)); n != 1 {
		t.Errorf("NearestNode = %v", n)
	}
	if n := g.NearestNode(geo.Pt(1e6, 0)); n != 3 {
		t.Errorf("NearestNode far = %v", n)
	}
	defer func() {
		if recover() == nil {
			t.Error("NearestNode on empty graph did not panic")
		}
	}()
	NewGraph().NearestNode(geo.Pt(0, 0))
}

func TestPolyline(t *testing.T) {
	g := lineGraph(t)
	p, err := g.NewPath([]EdgeID{0, 2, 4})
	if err != nil {
		t.Fatal(err)
	}
	pl := g.Polyline(p)
	if len(pl) != 4 {
		t.Fatalf("polyline len = %d", len(pl))
	}
	if math.Abs(pl.Length()-300) > 1e-9 {
		t.Errorf("polyline length = %v", pl.Length())
	}
}

func TestCongestionIndex(t *testing.T) {
	g := NewGraph()
	a := g.AddNode(geo.Pt(0, 0))
	b := g.AddNode(geo.Pt(100, 0))
	c := g.AddNode(geo.Pt(200, 0))
	// Free-flow edge: congestion contribution 0.
	e1, _ := g.AddEdge(a, b, 100, 10, 10)
	// Half-speed edge: FreeSpeed/Speed - 1 = 1.
	e2, _ := g.AddEdge(b, c, 100, 5, 10)
	p, err := g.NewPath([]EdgeID{e1, e2})
	if err != nil {
		t.Fatal(err)
	}
	// Weighted mean = (100*0 + 100*1)/200 = 0.5, scaled by 10 -> 5.
	if got := g.Congestion(p); math.Abs(got-5) > 1e-9 {
		t.Errorf("Congestion = %v, want 5", got)
	}
	if got := g.Congestion(Path{}); got != 0 {
		t.Errorf("Congestion(empty) = %v", got)
	}
}

func TestPathEqual(t *testing.T) {
	a := Path{Edges: []EdgeID{1, 2, 3}}
	b := Path{Edges: []EdgeID{1, 2, 3}}
	c := Path{Edges: []EdgeID{1, 2}}
	d := Path{Edges: []EdgeID{1, 2, 4}}
	if !PathEqual(a, b) || PathEqual(a, c) || PathEqual(a, d) {
		t.Error("PathEqual misbehaved")
	}
}

func TestIsSimple(t *testing.T) {
	simple := Path{Nodes: []NodeID{0, 1, 2}}
	loopy := Path{Nodes: []NodeID{0, 1, 0}}
	if !simple.IsSimple() || loopy.IsSimple() {
		t.Error("IsSimple misbehaved")
	}
}
