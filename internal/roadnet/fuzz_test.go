package roadnet

import (
	"testing"

	"repro/internal/rng"
)

// FuzzShortestPathEquivalence drives the goal-directed engine and the frozen
// reference Dijkstra with fuzzer-chosen graph shapes, endpoints, and query
// modes, and requires bit-identical answers: same error/no-error outcome,
// same edge sequence, exactly equal Length and Time. Graph topology is
// derived deterministically from (seed, rows, cols), so every crash input
// replays exactly.
func FuzzShortestPathEquivalence(f *testing.F) {
	f.Add(uint64(1), uint(4), uint(4), uint(0), uint(3), false, uint8(0))
	f.Add(uint64(7), uint(9), uint(9), uint(80), uint(2), true, uint8(3))
	f.Add(uint64(42), uint(3), uint(12), uint(5), uint(35), false, uint8(7))
	f.Add(uint64(99), uint(12), uint(12), uint(143), uint(0), true, uint8(255))
	f.Fuzz(func(t *testing.T, seed uint64, rows, cols, srcRaw, dstRaw uint, byTime bool, banBits uint8) {
		rows = 2 + rows%14
		cols = 2 + cols%14
		s := rng.New(seed)
		g := randomUnitGrid(t, int(rows), int(cols), s.Child())
		n, m := g.NumNodes(), g.NumEdges()
		src := NodeID(int(srcRaw) % n)
		dst := NodeID(int(dstRaw) % n)
		w := ByLength
		if byTime {
			w = ByTime
		}
		// banBits seeds a deterministic banned-edge set (possibly empty).
		var bannedEdges map[EdgeID]bool
		if banBits != 0 {
			bannedEdges = map[EdgeID]bool{}
			bs := rng.New(uint64(banBits))
			for i := 0; i < int(banBits%8); i++ {
				bannedEdges[EdgeID(bs.Intn(m))] = true
			}
		}

		old := altMinNodes
		altMinNodes = 1 // force goal-directed search even on tiny grids
		defer func() { altMinNodes = old }()

		want, err1 := referenceShortestPathBanned(g, src, dst, w, bannedEdges, nil)
		got, err2 := g.shortestPathBanned(src, dst, w, bannedEdges, nil)
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("error mismatch %d->%d: ref=%v engine=%v", src, dst, err1, err2)
		}
		if err1 != nil {
			return
		}
		if !PathEqual(got, want) || got.Length != want.Length || got.Time != want.Time {
			t.Fatalf("paths diverge %d->%d w=%d ban=%v:\n got  %v (%v,%v)\n want %v (%v,%v)",
				src, dst, w, bannedEdges, got.Edges, got.Length, got.Time, want.Edges, want.Length, want.Time)
		}

		// Alternatives over the same graph must agree too (no bans: the
		// penalized loop has its own edge masking via penalties).
		wantAlt, errA := ReferenceAlternativeRoutes(g, src, dst, 3, 0.4)
		gotAlt, errB := g.AlternativeRoutes(src, dst, 3, 0.4)
		if (errA == nil) != (errB == nil) || len(wantAlt) != len(gotAlt) {
			t.Fatalf("alternatives mismatch %d->%d: ref=%d/%v engine=%d/%v", src, dst, len(wantAlt), errA, len(gotAlt), errB)
		}
		for i := range gotAlt {
			if !PathEqual(gotAlt[i], wantAlt[i]) {
				t.Fatalf("alternative %d diverges %d->%d:\n got  %v\n want %v", i, src, dst, gotAlt[i].Edges, wantAlt[i].Edges)
			}
		}
	})
}

// FuzzCHPathEquivalence drives the contraction-hierarchy engine against the
// frozen reference Dijkstra on fuzzer-chosen graphs and OD pairs: the
// preprocessing must be worker-count-invariant, and every answered path must
// be byte-for-byte identical to the reference — whether the hierarchy
// answered directly (tie-free jittered graphs) or detected a tie and
// delegated (unit grids). Graph topology derives deterministically from
// (seed, rows, cols, jitter), so every crash input replays exactly.
func FuzzCHPathEquivalence(f *testing.F) {
	f.Add(uint64(1), uint(4), uint(4), uint(0), uint(3), false, false)
	f.Add(uint64(7), uint(6), uint(5), uint(17), uint(2), true, true)
	f.Add(uint64(42), uint(3), uint(8), uint(5), uint(21), false, true)
	f.Add(uint64(99), uint(8), uint(8), uint(63), uint(0), true, false)
	f.Fuzz(func(t *testing.T, seed uint64, rows, cols, srcRaw, dstRaw uint, byTime, jitter bool) {
		rows = 2 + rows%8
		cols = 2 + cols%8
		s := rng.New(seed)
		var g *Graph
		if jitter {
			g = randomJitterGrid(t, int(rows), int(cols), s.Child())
		} else {
			g = randomUnitGrid(t, int(rows), int(cols), s.Child())
		}
		n := g.NumNodes()
		src := NodeID(int(srcRaw) % n)
		dst := NodeID(int(dstRaw) % n)
		w := ByLength
		if byTime {
			w = ByTime
		}

		old := altMinNodes
		altMinNodes = 1 // force goal-directed search on the delegation path
		defer func() { altMinNodes = old }()

		h := BuildHierarchy(g, w, 1)
		h3 := BuildHierarchy(g, w, 3)
		if len(h.edges) != len(h3.edges) || h.shortcuts != h3.shortcuts {
			t.Fatalf("worker count changed the hierarchy: %d/%d edges, %d/%d shortcuts",
				len(h.edges), len(h3.edges), h.shortcuts, h3.shortcuts)
		}
		for i := range h.edges {
			if h.edges[i] != h3.edges[i] {
				t.Fatalf("worker count changed CH edge %d: %+v vs %+v", i, h.edges[i], h3.edges[i])
			}
		}
		if err := g.AttachHierarchy(h); err != nil {
			t.Fatal(err)
		}

		want, err1 := ReferenceShortestPath(g, src, dst, w)
		got, err2 := g.ShortestPath(src, dst, w)
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("error mismatch %d->%d: ref=%v ch=%v", src, dst, err1, err2)
		}
		if err1 != nil {
			return
		}
		if !PathEqual(got, want) || got.Length != want.Length || got.Time != want.Time {
			t.Fatalf("CH path diverges %d->%d w=%d jitter=%v:\n got  %v (%v,%v)\n want %v (%v,%v)",
				src, dst, w, jitter, got.Edges, got.Length, got.Time, want.Edges, want.Length, want.Time)
		}

		// The raw bidirectional distance must agree with the reference up to
		// the tie band even when path extraction delegates.
		ref := want.Length
		if w == ByTime {
			ref = want.Time
		}
		if dist, reached, _ := h.RawQuery(src, dst); !reached {
			t.Fatalf("CH raw query unreachable for a reachable pair %d->%d", src, dst)
		} else if !chNearEqual(dist, ref) {
			t.Fatalf("raw CH distance %v vs reference %v for %d->%d", dist, ref, src, dst)
		}
	})
}
