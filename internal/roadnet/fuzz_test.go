package roadnet

import (
	"testing"

	"repro/internal/rng"
)

// FuzzShortestPathEquivalence drives the goal-directed engine and the frozen
// reference Dijkstra with fuzzer-chosen graph shapes, endpoints, and query
// modes, and requires bit-identical answers: same error/no-error outcome,
// same edge sequence, exactly equal Length and Time. Graph topology is
// derived deterministically from (seed, rows, cols), so every crash input
// replays exactly.
func FuzzShortestPathEquivalence(f *testing.F) {
	f.Add(uint64(1), uint(4), uint(4), uint(0), uint(3), false, uint8(0))
	f.Add(uint64(7), uint(9), uint(9), uint(80), uint(2), true, uint8(3))
	f.Add(uint64(42), uint(3), uint(12), uint(5), uint(35), false, uint8(7))
	f.Add(uint64(99), uint(12), uint(12), uint(143), uint(0), true, uint8(255))
	f.Fuzz(func(t *testing.T, seed uint64, rows, cols, srcRaw, dstRaw uint, byTime bool, banBits uint8) {
		rows = 2 + rows%14
		cols = 2 + cols%14
		s := rng.New(seed)
		g := randomUnitGrid(t, int(rows), int(cols), s.Child())
		n, m := g.NumNodes(), g.NumEdges()
		src := NodeID(int(srcRaw) % n)
		dst := NodeID(int(dstRaw) % n)
		w := ByLength
		if byTime {
			w = ByTime
		}
		// banBits seeds a deterministic banned-edge set (possibly empty).
		var bannedEdges map[EdgeID]bool
		if banBits != 0 {
			bannedEdges = map[EdgeID]bool{}
			bs := rng.New(uint64(banBits))
			for i := 0; i < int(banBits%8); i++ {
				bannedEdges[EdgeID(bs.Intn(m))] = true
			}
		}

		old := altMinNodes
		altMinNodes = 1 // force goal-directed search even on tiny grids
		defer func() { altMinNodes = old }()

		want, err1 := referenceShortestPathBanned(g, src, dst, w, bannedEdges, nil)
		got, err2 := g.shortestPathBanned(src, dst, w, bannedEdges, nil)
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("error mismatch %d->%d: ref=%v engine=%v", src, dst, err1, err2)
		}
		if err1 != nil {
			return
		}
		if !PathEqual(got, want) || got.Length != want.Length || got.Time != want.Time {
			t.Fatalf("paths diverge %d->%d w=%d ban=%v:\n got  %v (%v,%v)\n want %v (%v,%v)",
				src, dst, w, bannedEdges, got.Edges, got.Length, got.Time, want.Edges, want.Length, want.Time)
		}

		// Alternatives over the same graph must agree too (no bans: the
		// penalized loop has its own edge masking via penalties).
		wantAlt, errA := ReferenceAlternativeRoutes(g, src, dst, 3, 0.4)
		gotAlt, errB := g.AlternativeRoutes(src, dst, 3, 0.4)
		if (errA == nil) != (errB == nil) || len(wantAlt) != len(gotAlt) {
			t.Fatalf("alternatives mismatch %d->%d: ref=%d/%v engine=%d/%v", src, dst, len(wantAlt), errA, len(gotAlt), errB)
		}
		for i := range gotAlt {
			if !PathEqual(gotAlt[i], wantAlt[i]) {
				t.Fatalf("alternative %d diverges %d->%d:\n got  %v\n want %v", i, src, dst, gotAlt[i].Edges, wantAlt[i].Edges)
			}
		}
	})
}
