package roadnet

import (
	"reflect"
	"testing"

	"repro/internal/geo"
	"repro/internal/rng"
)

// randomJitterGrid builds a rows×cols grid with continuously jittered edge
// lengths — the opposite of randomUnitGrid: shortest-path costs are distinct
// floats in practice, so CH queries answer directly instead of delegating.
func randomJitterGrid(tb testing.TB, rows, cols int, s *rng.Stream) *Graph {
	tb.Helper()
	g := NewGraph()
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			g.AddNode(geo.Pt(float64(c)*100, float64(r)*100))
		}
	}
	id := func(r, c int) NodeID { return NodeID(r*cols + c) }
	addBoth := func(a, b NodeID) {
		for _, pair := range [][2]NodeID{{a, b}, {b, a}} {
			l := s.Uniform(80, 120)
			sp := s.Uniform(5, 20)
			if _, err := g.AddEdge(pair[0], pair[1], l, sp, sp); err != nil {
				tb.Fatal(err)
			}
		}
	}
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				addBoth(id(r, c), id(r, c+1))
			}
			if r+1 < rows {
				addBoth(id(r, c), id(r+1, c))
			}
		}
	}
	return g
}

// assertSameHierarchy fails unless the two hierarchies are structurally
// identical: same node ordering, same CH edge store (including shortcut
// trees, weights, and taint marks), and same CSR layout.
func assertSameHierarchy(t *testing.T, ctx string, got, want *Hierarchy) {
	t.Helper()
	if !reflect.DeepEqual(got.rank, want.rank) {
		t.Fatalf("%s: node orderings differ", ctx)
	}
	if !reflect.DeepEqual(got.edges, want.edges) {
		t.Fatalf("%s: CH edge stores differ (%d vs %d edges)", ctx, len(got.edges), len(want.edges))
	}
	if !reflect.DeepEqual(got.taint, want.taint) {
		t.Fatalf("%s: taint marks differ", ctx)
	}
	if !reflect.DeepEqual(got.upOff, want.upOff) || !reflect.DeepEqual(got.upArc, want.upArc) ||
		!reflect.DeepEqual(got.downOff, want.downOff) || !reflect.DeepEqual(got.downArc, want.downArc) {
		t.Fatalf("%s: CSR adjacency differs", ctx)
	}
	if got.shortcuts != want.shortcuts || got.buildTies != want.buildTies || got.rounds != want.rounds {
		t.Fatalf("%s: stats differ: shortcuts %d/%d ties %d/%d rounds %d/%d",
			ctx, got.shortcuts, want.shortcuts, got.buildTies, want.buildTies, got.rounds, want.rounds)
	}
}

// TestHierarchyBuildDeterministic is the parallel-preprocessing acceptance
// test: the hierarchy must be bit-identical at 1, 4, and 8 workers, on both
// tie-heavy and tie-free graphs, under both weights.
func TestHierarchyBuildDeterministic(t *testing.T) {
	s := rng.New(501)
	graphs := map[string]*Graph{
		"unitGrid":   randomUnitGrid(t, 10, 10, s.Child()),
		"jitterGrid": randomJitterGrid(t, 10, 10, s.Child()),
		"city":       GenerateCity(DefaultCity(GridCity), s.Child()),
	}
	for name, g := range graphs {
		for _, w := range []Weight{ByLength, ByTime} {
			want := BuildHierarchy(g, w, 1)
			for _, workers := range []int{4, 8} {
				got := BuildHierarchy(g, w, workers)
				assertSameHierarchy(t, name, got, want)
			}
		}
	}
}

// TestCHMatchesReferenceOnUnitGrids checks bit-identity on the tie-heavy
// grids: here nearly every query observes an exact-cost tie and delegates to
// the canonical core, and the answers must remain indistinguishable from a
// graph without a hierarchy.
func TestCHMatchesReferenceOnUnitGrids(t *testing.T) {
	forceALT(t)
	s := rng.New(502)
	for _, size := range [][2]int{{4, 4}, {7, 5}, {12, 12}} {
		g := randomUnitGrid(t, size[0], size[1], s.Child())
		for _, w := range []Weight{ByLength, ByTime} {
			if err := g.AttachHierarchy(BuildHierarchy(g, w, 3)); err != nil {
				t.Fatal(err)
			}
		}
		n := g.NumNodes()
		for trial := 0; trial < 60; trial++ {
			src, dst := NodeID(s.Intn(n)), NodeID(s.Intn(n))
			for _, w := range []Weight{ByLength, ByTime} {
				want, err1 := ReferenceShortestPath(g, src, dst, w)
				got, err2 := g.ShortestPath(src, dst, w)
				if (err1 == nil) != (err2 == nil) {
					t.Fatalf("error mismatch for %d->%d: ref=%v engine=%v", src, dst, err1, err2)
				}
				if err1 == nil {
					assertSamePath(t, "ch-grid", got, want)
				}
			}
		}
	}
}

// TestCHMatchesReferenceOnCities checks bit-identity on all three generated
// city geometries with hierarchies attached for both weights.
func TestCHMatchesReferenceOnCities(t *testing.T) {
	s := rng.New(503)
	for _, kind := range []CityKind{GridCity, RadialCity, HillCity} {
		g := GenerateCity(DefaultCity(kind), s.Child())
		for _, w := range []Weight{ByLength, ByTime} {
			if err := g.AttachHierarchy(BuildHierarchy(g, w, 4)); err != nil {
				t.Fatal(err)
			}
		}
		n := g.NumNodes()
		for trial := 0; trial < 60; trial++ {
			src, dst := NodeID(s.Intn(n)), NodeID(s.Intn(n))
			for _, w := range []Weight{ByLength, ByTime} {
				want, err1 := ReferenceShortestPath(g, src, dst, w)
				got, err2 := g.ShortestPath(src, dst, w)
				if err1 != nil || err2 != nil {
					t.Fatalf("unexpected error on strongly connected city: %v / %v", err1, err2)
				}
				assertSamePath(t, kind.String(), got, want)
			}
		}
	}
}

// TestCHAnswersDirectlyOnJitteredGraphs verifies the hierarchy actually
// answers (no delegation) on graphs with distinct float costs — the regime
// the |V|=1M benchmark ladder and its ≥5× speedup floor run in — and that
// the direct answers are bit-identical to the reference.
func TestCHAnswersDirectlyOnJitteredGraphs(t *testing.T) {
	s := rng.New(504)
	g := randomJitterGrid(t, 12, 12, s.Child())
	h := BuildHierarchy(g, ByLength, 2)
	if h.BuildTies() != 0 {
		t.Fatalf("jittered grid produced %d build-time ties, expected none", h.BuildTies())
	}
	if err := g.AttachHierarchy(h); err != nil {
		t.Fatal(err)
	}
	sc := g.NewSearchScratch()
	n := g.NumNodes()
	hits := 0
	for trial := 0; trial < 120; trial++ {
		src, dst := NodeID(s.Intn(n)), NodeID(s.Intn(n))
		if src == dst {
			continue
		}
		edges, cost, st := sc.chQuery(h, nil, src, dst, ByLength)
		if st == chHit {
			hits++
			want, err := ReferenceShortestPath(g, src, dst, ByLength)
			if err != nil {
				t.Fatal(err)
			}
			got, err := g.NewPath(edges)
			if err != nil {
				t.Fatalf("CH emitted a discontinuous path: %v", err)
			}
			assertSamePath(t, "ch-direct", got, want)
			if cost != want.Length {
				t.Fatalf("CH cost %v != reference length %v", cost, want.Length)
			}
		}
	}
	if hits < 100 {
		t.Fatalf("only %d/120 queries answered directly on a tie-free graph", hits)
	}
}

// TestCHRawDistanceMatchesReference checks the bidirectional search itself
// (before any delegation) computes exact shortest distances: on unit grids
// under ByLength all arithmetic is small-integer-exact, so the shortcut-tree
// sums must equal the reference distance even though path extraction
// delegates on these graphs.
func TestCHRawDistanceMatchesReference(t *testing.T) {
	s := rng.New(505)
	g := randomUnitGrid(t, 9, 9, s.Child())
	h := BuildHierarchy(g, ByLength, 2)
	if h.BuildTies() == 0 {
		t.Fatal("unit grid produced no build-time ties; the taint path is untested")
	}
	n := g.NumNodes()
	for trial := 0; trial < 120; trial++ {
		src, dst := NodeID(s.Intn(n)), NodeID(s.Intn(n))
		want, err := ReferenceShortestPath(g, src, dst, ByLength)
		dist, reached, _ := h.RawQuery(src, dst)
		if (err == nil) != reached {
			t.Fatalf("reachability mismatch %d->%d: ref err=%v, CH reached=%v", src, dst, err, reached)
		}
		if err == nil && dist != want.Length {
			t.Fatalf("raw CH distance %v != reference %v for %d->%d", dist, want.Length, src, dst)
		}
	}
}

// TestCHUnreachable checks the CH path reports unreachability exactly like
// the engine and reference do.
func TestCHUnreachable(t *testing.T) {
	g := NewGraph()
	a := g.AddNode(geo.Pt(0, 0))
	b := g.AddNode(geo.Pt(1, 0))
	c := g.AddNode(geo.Pt(2, 0))
	if _, err := g.AddEdge(a, b, 1, 10, 10); err != nil {
		t.Fatal(err)
	}
	if err := g.AttachHierarchy(BuildHierarchy(g, ByLength, 1)); err != nil {
		t.Fatal(err)
	}
	_, errRef := ReferenceShortestPath(g, a, c, ByLength)
	_, errCH := g.ShortestPath(g.Nodes[a].ID, c, ByLength)
	if errRef == nil || errCH == nil {
		t.Fatalf("expected unreachable errors, got ref=%v ch=%v", errRef, errCH)
	}
	if errRef.Error() != errCH.Error() {
		t.Fatalf("error text diverged: ref=%q ch=%q", errRef, errCH)
	}
}

// TestCHZeroAllocWarmQuery is the 0 allocs/op acceptance gate for the warm
// CH query path, including shortcut unpacking into the caller's buffer.
func TestCHZeroAllocWarmQuery(t *testing.T) {
	s := rng.New(506)
	g := randomJitterGrid(t, 16, 16, s.Child())
	h := BuildHierarchy(g, ByLength, 2)
	if err := g.AttachHierarchy(h); err != nil {
		t.Fatal(err)
	}
	sc := g.NewSearchScratch()
	n := g.NumNodes()
	type od struct{ src, dst NodeID }
	ods := make([]od, 32)
	for i := range ods {
		ods[i] = od{NodeID(s.Intn(n)), NodeID(s.Intn(n))}
	}
	buf := make([]EdgeID, 0, 4*n)
	for _, o := range ods {
		var err error
		if buf, _, err = sc.AppendShortestPath(buf[:0], o.src, o.dst, ByLength); err != nil {
			t.Fatal(err)
		}
	}
	i := 0
	allocs := testing.AllocsPerRun(200, func() {
		o := ods[i%len(ods)]
		i++
		buf, _, _ = sc.AppendShortestPath(buf[:0], o.src, o.dst, ByLength)
	})
	if allocs != 0 {
		t.Fatalf("warm CH query allocated %.1f objects/op, want 0", allocs)
	}
}

// TestAttachHierarchyValidates covers attach-time validation and
// mutation-driven detachment.
func TestAttachHierarchyValidates(t *testing.T) {
	s := rng.New(507)
	g := randomJitterGrid(t, 4, 4, s.Child())
	if err := g.AttachHierarchy(nil); err == nil {
		t.Fatal("nil hierarchy attached")
	}
	other := randomJitterGrid(t, 5, 5, s.Child())
	if err := g.AttachHierarchy(BuildHierarchy(other, ByLength, 1)); err == nil {
		t.Fatal("hierarchy with mismatched node count attached")
	}
	h := BuildHierarchy(g, ByLength, 1)
	if err := g.AttachHierarchy(h); err != nil {
		t.Fatal(err)
	}
	if g.AttachedHierarchy(ByLength) != h {
		t.Fatal("hierarchy not attached")
	}
	if g.AttachedHierarchy(ByTime) != nil {
		t.Fatal("ByTime hierarchy reported attached after ByLength attach")
	}
	// Mutation must detach: the hierarchy no longer describes the graph.
	g.AddNode(geo.Pt(1e6, 1e6))
	if g.AttachedHierarchy(ByLength) != nil {
		t.Fatal("stale hierarchy survived graph mutation")
	}
}

// TestCHWeightMismatchFallsBack: with only a ByLength hierarchy attached,
// ByTime queries must run on the ALT/exact core and stay bit-identical.
func TestCHWeightMismatchFallsBack(t *testing.T) {
	s := rng.New(508)
	g := randomJitterGrid(t, 10, 10, s.Child())
	if err := g.AttachHierarchy(BuildHierarchy(g, ByLength, 2)); err != nil {
		t.Fatal(err)
	}
	n := g.NumNodes()
	before := chQueries.Value()
	for trial := 0; trial < 40; trial++ {
		src, dst := NodeID(s.Intn(n)), NodeID(s.Intn(n))
		want, err1 := ReferenceShortestPath(g, src, dst, ByTime)
		got, err2 := g.ShortestPath(src, dst, ByTime)
		if err1 != nil || err2 != nil {
			t.Fatalf("unexpected error: %v / %v", err1, err2)
		}
		assertSamePath(t, "bytime-no-ch", got, want)
	}
	if d := chQueries.Value() - before; d != 0 {
		t.Fatalf("%d ByTime queries consulted the ByLength hierarchy", d)
	}
}

// TestBannedQueriesBypassCH: banned-edge/banned-node queries change the
// metric away from the preprocessed one, so they must bypass the hierarchy
// entirely (no CH query attempts) and stay bit-identical to the reference.
func TestBannedQueriesBypassCH(t *testing.T) {
	forceALT(t)
	s := rng.New(509)
	g := randomUnitGrid(t, 8, 8, s.Child())
	if err := g.AttachHierarchy(BuildHierarchy(g, ByLength, 2)); err != nil {
		t.Fatal(err)
	}
	n, m := g.NumNodes(), g.NumEdges()
	before := chQueries.Value()
	for trial := 0; trial < 60; trial++ {
		src, dst := NodeID(s.Intn(n)), NodeID(s.Intn(n))
		bannedEdges := map[EdgeID]bool{}
		for i := 0; i < s.Intn(6); i++ {
			bannedEdges[EdgeID(s.Intn(m))] = true
		}
		want, err1 := referenceShortestPathBanned(g, src, dst, ByLength, bannedEdges, nil)
		got, err2 := g.shortestPathBanned(src, dst, ByLength, bannedEdges, nil)
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("error mismatch for %d->%d: ref=%v engine=%v", src, dst, err1, err2)
		}
		if err1 == nil {
			assertSamePath(t, "banned-with-ch", got, want)
		}
	}
	if d := chQueries.Value() - before; d != 0 {
		t.Fatalf("%d banned queries consulted the hierarchy, want 0", d)
	}
}

// TestAlternativesAndRouteCacheWithCHAttached is the satellite coverage for
// the recommendation stack over a CH-attached graph: the first route rides
// the hierarchy, the penalized follow-ups ride the fallback core, results
// stay bit-identical to the reference, and cached answers are independent of
// whether a hierarchy was attached when they were computed (same RouteKey →
// same canonical paths, so CH and fallback answers can never collide under
// one key).
func TestAlternativesAndRouteCacheWithCHAttached(t *testing.T) {
	s := rng.New(510)
	build := func(seed uint64) *Graph {
		return randomJitterGrid(t, 10, 10, rng.New(seed))
	}
	gCH := build(77)
	gPlain := build(77)
	if err := gCH.AttachHierarchy(BuildHierarchy(gCH, ByLength, 2)); err != nil {
		t.Fatal(err)
	}
	cacheCH := NewRouteCache(gCH)
	cachePlain := NewRouteCache(gPlain)
	n := gCH.NumNodes()
	for trial := 0; trial < 25; trial++ {
		src, dst := NodeID(s.Intn(n)), NodeID(s.Intn(n))
		k := 1 + s.Intn(4)
		want, err1 := ReferenceAlternativeRoutes(gCH, src, dst, k, 0.4)
		got, err2 := cacheCH.AlternativeRoutes(src, dst, k, 0.4)
		if (err1 == nil) != (err2 == nil) || len(want) != len(got) {
			t.Fatalf("alternatives mismatch: ref=%d/%v engine=%d/%v", len(want), err1, len(got), err2)
		}
		for i := range got {
			assertSamePath(t, "alt-with-ch", got[i], want[i])
		}
		// The same key on the CH-less twin graph must produce the identical
		// canonical answer: cache contents are engine-independent.
		plain, err3 := cachePlain.AlternativeRoutes(src, dst, k, 0.4)
		if err3 != nil || len(plain) != len(got) {
			t.Fatalf("plain twin diverged: %v, %d vs %d routes", err3, len(plain), len(got))
		}
		for i := range got {
			assertSamePath(t, "ch-vs-plain-cache", got[i], plain[i])
		}
		// Singleflight hit on the second read, same slice identity.
		again, err4 := cacheCH.AlternativeRoutes(src, dst, k, 0.4)
		if err4 != nil || len(again) != len(got) {
			t.Fatal("cache re-read diverged")
		}
		for i := range again {
			if &again[i] != &got[i] {
				t.Fatal("cache re-read returned a different slice (recomputed?)")
			}
		}
	}
}
