package roadnet

import (
	"sync"
	"testing"

	"repro/internal/rng"
)

func TestRouteCacheReturnsSameRoutes(t *testing.T) {
	s := rng.New(410)
	g := GenerateCity(DefaultCity(GridCity), s.Child())
	c := NewRouteCache(g)
	n := g.NumNodes()
	for trial := 0; trial < 20; trial++ {
		src, dst := NodeID(s.Intn(n)), NodeID(s.Intn(n))
		want, err1 := g.AlternativeRoutes(src, dst, 5, 0.4)
		got, err2 := c.AlternativeRoutes(src, dst, 5, 0.4)
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("error mismatch: %v / %v", err1, err2)
		}
		if len(got) != len(want) {
			t.Fatalf("route count %d != %d", len(got), len(want))
		}
		for i := range got {
			if !PathEqual(got[i], want[i]) {
				t.Fatalf("route %d differs", i)
			}
		}
		// Second lookup must return the identical cached slice.
		again, err := c.AlternativeRoutes(src, dst, 5, 0.4)
		if err != nil {
			t.Fatal(err)
		}
		if len(again) > 0 && len(got) > 0 && &again[0] != &got[0] {
			t.Fatal("cache hit returned a different slice than the first computation")
		}
	}
}

func TestRouteCacheKeyIncludesParameters(t *testing.T) {
	s := rng.New(411)
	g := GenerateCity(DefaultCity(GridCity), s.Child())
	c := NewRouteCache(g)
	n := g.NumNodes()
	src, dst := NodeID(s.Intn(n)), NodeID(s.Intn(n))
	k5, err := c.AlternativeRoutes(src, dst, 5, 0.4)
	if err != nil {
		t.Fatal(err)
	}
	k2, err := c.AlternativeRoutes(src, dst, 2, 0.4)
	if err != nil {
		t.Fatal(err)
	}
	if len(k2) > 2 {
		t.Fatalf("k=2 lookup returned %d routes (cache key ignored k?)", len(k2))
	}
	if len(k5) < len(k2) {
		t.Fatalf("k=5 lookup returned fewer routes (%d) than k=2 (%d)", len(k5), len(k2))
	}
}

// TestRouteCacheConcurrentSingleflight hammers a small OD set from many
// goroutines under -race: every caller for a key must observe the same
// result slice, proving one computation per key and no data races.
func TestRouteCacheConcurrentSingleflight(t *testing.T) {
	s := rng.New(412)
	g := GenerateCity(DefaultCity(GridCity), s.Child())
	c := NewRouteCache(g)
	n := g.NumNodes()
	type od struct{ src, dst NodeID }
	ods := make([]od, 8)
	for i := range ods {
		ods[i] = od{NodeID(s.Intn(n)), NodeID(s.Intn(n))}
	}
	const workers = 16
	results := make([][]([]Path), workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		results[w] = make([][]Path, len(ods))
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i, o := range ods {
				paths, err := c.AlternativeRoutes(o.src, o.dst, 5, 0.4)
				if err != nil {
					t.Errorf("worker %d od %d: %v", w, i, err)
					return
				}
				results[w][i] = paths
			}
		}()
	}
	wg.Wait()
	for w := 1; w < workers; w++ {
		for i := range ods {
			a, b := results[0][i], results[w][i]
			if len(a) != len(b) {
				t.Fatalf("worker %d od %d: %d routes vs %d", w, i, len(b), len(a))
			}
			if len(a) > 0 && &a[0] != &b[0] {
				t.Fatalf("worker %d od %d: got a distinct slice — computation ran more than once", w, i)
			}
		}
	}
}
