package optimal

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/rng"
	"repro/internal/task"
)

func randomInstance(seed uint64, users, tasks int) *core.Instance {
	return core.RandomInstance(core.DefaultRandomConfig(users, tasks), rng.New(seed))
}

// Solve must agree with brute force on many small random instances.
func TestSolveMatchesBruteForce(t *testing.T) {
	for seed := uint64(0); seed < 40; seed++ {
		in := randomInstance(seed, 2+int(seed%5), 3+int(seed%8))
		bf, err := BruteForce(in)
		if err != nil {
			t.Fatal(err)
		}
		bb, err := Solve(in)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(bf.Total-bb.Total) > 1e-9 {
			t.Fatalf("seed %d: B&B total %v != brute force %v", seed, bb.Total, bf.Total)
		}
		if !bb.Exact {
			t.Fatalf("seed %d: Solve reported inexact", seed)
		}
		// The returned choices must actually realize the reported total.
		p, err := bb.Profile(in)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(p.TotalProfit()-bb.Total) > 1e-9 {
			t.Fatalf("seed %d: choices realize %v, reported %v", seed, p.TotalProfit(), bb.Total)
		}
	}
}

// The optimum must dominate any equilibrium's total profit.
func TestOptimalDominatesEquilibrium(t *testing.T) {
	for seed := uint64(0); seed < 10; seed++ {
		in := randomInstance(seed, 8, 10)
		res := engine.Run(in, engine.NewSUU, rng.New(seed+50), engine.Config{})
		opt, err := Solve(in)
		if err != nil {
			t.Fatal(err)
		}
		if got := res.Profile.TotalProfit(); got > opt.Total+1e-9 {
			t.Fatalf("seed %d: equilibrium total %v exceeds optimum %v", seed, got, opt.Total)
		}
	}
}

// Figure 1's structure: the centralized optimum can exceed the best
// distributed equilibrium. Build the motivating 3-user example and check
// CORN finds the $12 solution.
func TestFigure1Example(t *testing.T) {
	// Tasks: t0 worth 5 (only r1), t1 worth 6 (shared, routes r2/r3/r4),
	// t2 worth 1 (only r5). Mirrors Fig. 1's rewards with µ=0.
	in := &core.Instance{
		Phi: 0.5, Theta: 0.5,
		Tasks: []task.Task{
			{ID: 0, A: 5, Mu: 0},
			{ID: 1, A: 6, Mu: 0},
			{ID: 2, A: 1, Mu: 0},
		},
		Users: []core.User{
			{ID: 0, Alpha: 1, Beta: 1, Gamma: 1, Routes: []core.Route{
				{User: 0, Tasks: []task.ID{0}}, // r1: private $5
				{User: 0, Tasks: []task.ID{1}}, // r2: shared $6
			}},
			{ID: 1, Alpha: 1, Beta: 1, Gamma: 1, Routes: []core.Route{
				{User: 1, Tasks: []task.ID{1}}, // r3
			}},
			{ID: 2, Alpha: 1, Beta: 1, Gamma: 1, Routes: []core.Route{
				{User: 2, Tasks: []task.ID{1}}, // r4: shared $6
				{User: 2, Tasks: []task.ID{2}}, // r5: private $1
			}},
		},
	}
	if err := in.Validate(); err != nil {
		t.Fatal(err)
	}
	opt, err := Solve(in)
	if err != nil {
		t.Fatal(err)
	}
	// Optimal: u0->r1 ($5), u1->r3 ($6), u2->r5 ($1) = $12.
	if math.Abs(opt.Total-12) > 1e-9 {
		t.Fatalf("Fig.1 optimum = %v, want 12", opt.Total)
	}
	if opt.Choices[0] != 0 || opt.Choices[1] != 0 || opt.Choices[2] != 1 {
		t.Errorf("Fig.1 optimal choices = %v", opt.Choices)
	}
	// The optimal profile is NOT a Nash equilibrium (u2 prefers r4: 6/2=3 > 1).
	p, _ := opt.Profile(in)
	if p.IsNash() {
		t.Error("Fig.1 optimum should not be a Nash equilibrium")
	}
	// The distributed equilibrium of Fig. 1 totals $11 and is Nash.
	eq, err := core.NewProfile(in, []int{0, 0, 0})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(eq.TotalProfit()-11) > 1e-9 {
		t.Errorf("Fig.1 equilibrium total = %v, want 11", eq.TotalProfit())
	}
	if !eq.IsNash() {
		t.Error("Fig.1 distributed solution should be a Nash equilibrium")
	}
}

func TestSolveBudget(t *testing.T) {
	in := randomInstance(3, 10, 12)
	sol, err := SolveBudget(in, 3)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Exact {
		t.Error("3-node budget should not complete a 10-user search")
	}
	// Incumbent is still a valid profile (greedy seed).
	if _, err := sol.Profile(in); err != nil {
		t.Fatal(err)
	}
	full, err := Solve(in)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Total > full.Total+1e-9 {
		t.Error("budgeted incumbent exceeds true optimum")
	}
}

func TestSolveRejectsInvalid(t *testing.T) {
	in := &core.Instance{}
	if _, err := Solve(in); err == nil {
		t.Error("invalid instance accepted by Solve")
	}
	if _, err := BruteForce(in); err == nil {
		t.Error("invalid instance accepted by BruteForce")
	}
}

func TestBruteForceNodeCount(t *testing.T) {
	in := randomInstance(5, 4, 6)
	want := 1
	for _, u := range in.Users {
		want *= len(u.Routes)
	}
	bf, err := BruteForce(in)
	if err != nil {
		t.Fatal(err)
	}
	if bf.Nodes != want {
		t.Errorf("brute force visited %d profiles, want %d", bf.Nodes, want)
	}
}

func TestBnBPrunes(t *testing.T) {
	in := randomInstance(6, 9, 10)
	bf, err := BruteForce(in)
	if err != nil {
		t.Fatal(err)
	}
	bb, err := Solve(in)
	if err != nil {
		t.Fatal(err)
	}
	if bb.Nodes >= bf.Nodes {
		t.Errorf("B&B explored %d nodes, brute force %d — no pruning?", bb.Nodes, bf.Nodes)
	}
}

func TestSolve14Users(t *testing.T) {
	// The paper's largest CORN runs use 14 users (Table 4); make sure the
	// solver handles that size comfortably.
	in := randomInstance(7, 14, 20)
	sol, err := Solve(in)
	if err != nil {
		t.Fatal(err)
	}
	if !sol.Exact {
		t.Error("14-user solve not exact")
	}
	if len(sol.Choices) != 14 {
		t.Errorf("choices len = %d", len(sol.Choices))
	}
}
