package optimal

import (
	"fmt"
	"math"

	"repro/internal/core"
)

// Greedy returns the sequential myopic assignment: users pick, in ID order,
// the route maximizing their own profit given earlier picks. It runs in
// O(|U|·maxRoutes·maxTasks) and is the incumbent seed of the exact solver;
// exposed so large instances (beyond CORN's exponential reach) still get a
// centralized reference point.
func Greedy(in *core.Instance) (Solution, error) {
	if err := in.Validate(); err != nil {
		return Solution{}, fmt.Errorf("optimal: %w", err)
	}
	choices := make([]int, len(in.Users))
	nk := make([]int, len(in.Tasks))
	for i, u := range in.Users {
		bestC, bestV := 0, math.Inf(-1)
		for c, r := range u.Routes {
			var reward float64
			for _, k := range r.Tasks {
				reward += in.Tasks[k].Share(nk[k] + 1)
			}
			v := u.Alpha*reward - u.Beta*in.DetourCost(r) - u.Gamma*in.CongestionCost(r)
			if v > bestV {
				bestC, bestV = c, v
			}
		}
		choices[i] = bestC
		for _, k := range u.Routes[bestC].Tasks {
			nk[k]++
		}
	}
	p, err := core.NewProfile(in, choices)
	if err != nil {
		return Solution{}, err
	}
	return Solution{Choices: choices, Total: p.TotalProfit(), Nodes: len(in.Users), Exact: false}, nil
}

// LocalSearch improves a solution by single-user moves that increase the
// TOTAL profit (not the mover's own profit — this climbs the social
// objective, unlike best-response dynamics which climb the potential). It
// stops at a local optimum of the 1-swap neighborhood or after maxRounds
// full passes (0 = no cap).
func LocalSearch(in *core.Instance, start Solution, maxRounds int) (Solution, error) {
	if err := in.Validate(); err != nil {
		return Solution{}, fmt.Errorf("optimal: %w", err)
	}
	p, err := core.NewProfile(in, start.Choices)
	if err != nil {
		return Solution{}, err
	}
	total := p.TotalProfit()
	nodes := start.Nodes
	for round := 0; maxRounds == 0 || round < maxRounds; round++ {
		improved := false
		for i := range in.Users {
			u := core.UserID(i)
			cur := p.Choice(u)
			bestC, bestTotal := cur, total
			for c := range in.Users[i].Routes {
				if c == cur {
					continue
				}
				nodes++
				p.SetChoice(u, c)
				if tt := p.TotalProfit(); tt > bestTotal+1e-12 {
					bestC, bestTotal = c, tt
				}
			}
			p.SetChoice(u, bestC)
			if bestC != cur {
				total = bestTotal
				improved = true
			}
		}
		if !improved {
			break
		}
	}
	return Solution{Choices: p.Choices(), Total: total, Nodes: nodes, Exact: false}, nil
}

// GreedyWithLocalSearch chains Greedy and LocalSearch — the recommended
// centralized heuristic for instances too large for Solve.
func GreedyWithLocalSearch(in *core.Instance) (Solution, error) {
	g, err := Greedy(in)
	if err != nil {
		return Solution{}, err
	}
	return LocalSearch(in, g, 0)
}
