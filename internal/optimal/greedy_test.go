package optimal

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/rng"
)

func TestGreedyValid(t *testing.T) {
	for seed := uint64(0); seed < 20; seed++ {
		in := randomInstance(seed, 12, 15)
		g, err := Greedy(in)
		if err != nil {
			t.Fatal(err)
		}
		p, err := core.NewProfile(in, g.Choices)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(p.TotalProfit()-g.Total) > 1e-9 {
			t.Fatalf("seed %d: greedy total %v not realized (%v)", seed, g.Total, p.TotalProfit())
		}
		if g.Exact {
			t.Error("greedy claims exactness")
		}
	}
}

func TestGreedyNeverBeatsOptimum(t *testing.T) {
	for seed := uint64(0); seed < 20; seed++ {
		in := randomInstance(seed, 7, 10)
		g, err := Greedy(in)
		if err != nil {
			t.Fatal(err)
		}
		opt, err := Solve(in)
		if err != nil {
			t.Fatal(err)
		}
		if g.Total > opt.Total+1e-9 {
			t.Fatalf("seed %d: greedy %v beats optimum %v", seed, g.Total, opt.Total)
		}
	}
}

func TestLocalSearchImprovesOrKeeps(t *testing.T) {
	for seed := uint64(0); seed < 20; seed++ {
		in := randomInstance(seed, 10, 12)
		g, err := Greedy(in)
		if err != nil {
			t.Fatal(err)
		}
		ls, err := LocalSearch(in, g, 0)
		if err != nil {
			t.Fatal(err)
		}
		if ls.Total < g.Total-1e-9 {
			t.Fatalf("seed %d: local search regressed %v -> %v", seed, g.Total, ls.Total)
		}
		// Local optimality of the 1-swap neighborhood.
		p, err := core.NewProfile(in, ls.Choices)
		if err != nil {
			t.Fatal(err)
		}
		base := p.TotalProfit()
		for i := range in.Users {
			cur := p.Choice(core.UserID(i))
			for c := range in.Users[i].Routes {
				if c == cur {
					continue
				}
				q := p.Clone()
				q.SetChoice(core.UserID(i), c)
				if q.TotalProfit() > base+1e-9 {
					t.Fatalf("seed %d: 1-swap improvement remains after local search", seed)
				}
			}
		}
	}
}

func TestLocalSearchBounded(t *testing.T) {
	in := randomInstance(9, 10, 12)
	g, err := Greedy(in)
	if err != nil {
		t.Fatal(err)
	}
	one, err := LocalSearch(in, g, 1)
	if err != nil {
		t.Fatal(err)
	}
	full, err := LocalSearch(in, g, 0)
	if err != nil {
		t.Fatal(err)
	}
	if one.Total > full.Total+1e-9 {
		t.Error("1-round local search beats unbounded")
	}
}

func TestGreedyWithLocalSearchSandwich(t *testing.T) {
	// greedy <= greedy+LS <= optimum, on solvable sizes.
	for seed := uint64(30); seed < 45; seed++ {
		in := randomInstance(seed, 8, 10)
		g, err := Greedy(in)
		if err != nil {
			t.Fatal(err)
		}
		gls, err := GreedyWithLocalSearch(in)
		if err != nil {
			t.Fatal(err)
		}
		opt, err := Solve(in)
		if err != nil {
			t.Fatal(err)
		}
		if gls.Total < g.Total-1e-9 || gls.Total > opt.Total+1e-9 {
			t.Fatalf("seed %d: sandwich violated: %v <= %v <= %v", seed, g.Total, gls.Total, opt.Total)
		}
	}
}

func TestGreedyLargeInstance(t *testing.T) {
	// Sizes far beyond CORN's reach stay fast.
	in := core.RandomInstance(core.DefaultRandomConfig(200, 150), rng.New(1))
	g, err := GreedyWithLocalSearch(in)
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Choices) != 200 {
		t.Fatalf("choices = %d", len(g.Choices))
	}
}

func TestGreedyRejectsInvalid(t *testing.T) {
	if _, err := Greedy(&core.Instance{}); err == nil {
		t.Error("invalid instance accepted by Greedy")
	}
	if _, err := LocalSearch(&core.Instance{}, Solution{}, 0); err == nil {
		t.Error("invalid instance accepted by LocalSearch")
	}
}
