// Package optimal implements CORN, the Centralized Optimal Route Navigation
// baseline of §5.2: an exact maximizer of the total user profit Σ_i P_i(s)
// (Eq. 5). Theorem 1 shows the problem is NP-hard, so exactness costs
// exponential time in the worst case; the paper only evaluates CORN at
// ≤ 14 users (Figs. 7 and 10, Table 4), where the branch-and-bound solver
// below is fast. A plain brute-force solver is included as a cross-check
// oracle for tests.
package optimal

import (
	"fmt"
	"math"

	"repro/internal/core"
)

// Solution is an optimal (or best-found) strategy profile.
type Solution struct {
	Choices []int
	Total   float64
	// Nodes is the number of branch-and-bound tree nodes explored.
	Nodes int
	// Exact reports whether the search ran to completion (always true for
	// Solve; false only if a node budget was exhausted in SolveBudget).
	Exact bool
}

// Solve returns a centrally optimal strategy profile maximizing total
// profit. It uses depth-first branch and bound with an admissible upper
// bound; see ub() for the argument of admissibility.
func Solve(in *core.Instance) (Solution, error) {
	return SolveBudget(in, 0)
}

// SolveBudget is Solve with a cap on explored nodes (0 = unlimited). When
// the cap is hit the incumbent (best profile found so far) is returned with
// Exact=false.
func SolveBudget(in *core.Instance, maxNodes int) (Solution, error) {
	if err := in.Validate(); err != nil {
		return Solution{}, fmt.Errorf("optimal: %w", err)
	}
	b := &bb{in: in, maxNodes: maxNodes}
	b.init()
	b.dfs(0)
	sol := Solution{Choices: b.bestChoices, Total: b.bestTotal, Nodes: b.nodes, Exact: !b.budgetHit}
	return sol, nil
}

type bb struct {
	in       *core.Instance
	maxNodes int

	nk      []int // participant counts of the partial assignment
	choices []int
	// maxShareRemaining[i] is an upper bound on the α-weighted reward minus
	// cost any assignment of user i can contribute given counts only grow;
	// recomputed lazily per node for unassigned users.
	bestChoices []int
	bestTotal   float64
	nodes       int
	budgetHit   bool
}

func (b *bb) init() {
	in := b.in
	b.nk = make([]int, len(in.Tasks))
	b.choices = make([]int, len(in.Users))
	for i := range b.choices {
		b.choices[i] = -1
	}
	b.bestTotal = math.Inf(-1)
	// Seed the incumbent with a greedy sequential best-response pass: each
	// user picks the route maximizing its own profit given earlier picks.
	// This is cheap and gives strong pruning from the start.
	greedy := make([]int, len(in.Users))
	nk := make([]int, len(in.Tasks))
	for i, u := range in.Users {
		bestC, bestV := 0, math.Inf(-1)
		for c, r := range u.Routes {
			v := b.routeProfitWith(nk, u, r, nil)
			if v > bestV {
				bestC, bestV = c, v
			}
		}
		greedy[i] = bestC
		for _, k := range u.Routes[bestC].Tasks {
			nk[k]++
		}
	}
	if p, err := core.NewProfile(in, greedy); err == nil {
		b.bestTotal = p.TotalProfit()
		b.bestChoices = append([]int(nil), greedy...)
	}
}

// routeProfitWith computes user u's profit for route r if it were added to
// counts nk (u not yet counted). If joinDelta is non-nil, counts are taken
// as nk[k]+joinDelta[k].
func (b *bb) routeProfitWith(nk []int, u core.User, r core.Route, joinDelta []int) float64 {
	var reward float64
	for _, k := range r.Tasks {
		n := nk[k] + 1
		if joinDelta != nil {
			n += joinDelta[k]
		}
		reward += b.in.Tasks[k].Share(n)
	}
	return u.Alpha*reward - u.Beta*b.in.DetourCost(r) - u.Gamma*b.in.CongestionCost(r)
}

// partialTotal returns the total profit of users [0,upto) evaluated at the
// CURRENT counts. Because per-user shares w_k(n)/n are non-increasing in n
// (a_k ≥ 1, µ_k ∈ [0,1] ⇒ w_k(n)/n strictly decreases), and counts only
// grow as further users are assigned, this value is an upper bound on those
// users' final total profit.
func (b *bb) partialTotal(upto int) float64 {
	var total float64
	for i := 0; i < upto; i++ {
		u := b.in.Users[i]
		r := u.Routes[b.choices[i]]
		var reward float64
		for _, k := range r.Tasks {
			reward += b.in.Tasks[k].Share(b.nk[k])
		}
		total += u.Alpha*reward - u.Beta*b.in.DetourCost(r) - u.Gamma*b.in.CongestionCost(r)
	}
	return total
}

// ub returns an admissible upper bound on the best total profit reachable
// from the current partial assignment of users [0,depth): the partial total
// at current counts (an overestimate of those users' final profits) plus,
// for each unassigned user, the maximum over its routes of the profit it
// would get joining the current counts alone (an overestimate because any
// additional participant only lowers shares).
func (b *bb) ub(depth int) float64 {
	total := b.partialTotal(depth)
	for i := depth; i < len(b.in.Users); i++ {
		u := b.in.Users[i]
		best := math.Inf(-1)
		for _, r := range u.Routes {
			if v := b.routeProfitWith(b.nk, u, r, nil); v > best {
				best = v
			}
		}
		total += best
	}
	return total
}

func (b *bb) dfs(depth int) {
	if b.budgetHit {
		return
	}
	b.nodes++
	if b.maxNodes > 0 && b.nodes > b.maxNodes {
		b.budgetHit = true
		return
	}
	in := b.in
	if depth == len(in.Users) {
		if total := b.partialTotal(depth); total > b.bestTotal {
			b.bestTotal = total
			b.bestChoices = append(b.bestChoices[:0], b.choices...)
		}
		return
	}
	if b.ub(depth) <= b.bestTotal+1e-12 {
		return // prune: cannot beat the incumbent
	}
	u := in.Users[depth]
	// Branch on routes in descending myopic value to find good incumbents
	// early.
	order := make([]int, len(u.Routes))
	vals := make([]float64, len(u.Routes))
	for c := range u.Routes {
		order[c] = c
		vals[c] = b.routeProfitWith(b.nk, u, u.Routes[c], nil)
	}
	for i := 1; i < len(order); i++ {
		for j := i; j > 0 && vals[order[j]] > vals[order[j-1]]; j-- {
			order[j], order[j-1] = order[j-1], order[j]
		}
	}
	for _, c := range order {
		b.choices[depth] = c
		for _, k := range u.Routes[c].Tasks {
			b.nk[k]++
		}
		b.dfs(depth + 1)
		for _, k := range u.Routes[c].Tasks {
			b.nk[k]--
		}
		b.choices[depth] = -1
	}
}

// BruteForce exhaustively enumerates all strategy profiles and returns the
// optimum. Exponential; use only on tiny instances (tests use it as the
// oracle for Solve).
func BruteForce(in *core.Instance) (Solution, error) {
	if err := in.Validate(); err != nil {
		return Solution{}, fmt.Errorf("optimal: %w", err)
	}
	choices := make([]int, len(in.Users))
	best := Solution{Total: math.Inf(-1), Exact: true}
	p, err := core.NewProfile(in, choices)
	if err != nil {
		return Solution{}, err
	}
	for {
		if total := p.TotalProfit(); total > best.Total {
			best.Total = total
			best.Choices = append(best.Choices[:0], choices...)
		}
		best.Nodes++
		// Odometer increment over the mixed-radix choice vector.
		i := 0
		for ; i < len(choices); i++ {
			if choices[i]+1 < len(in.Users[i].Routes) {
				choices[i]++
				p.SetChoice(core.UserID(i), choices[i])
				break
			}
			choices[i] = 0
			p.SetChoice(core.UserID(i), 0)
		}
		if i == len(choices) {
			return best, nil
		}
	}
}

// Profile materializes the solution as a core.Profile.
func (s Solution) Profile(in *core.Instance) (*core.Profile, error) {
	return core.NewProfile(in, s.Choices)
}
